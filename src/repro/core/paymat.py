"""Payoff-pair stores: dense and blocked backing for the fitness engines.

The engines' contract is a logical ``capacity x capacity`` matrix of pair
payoffs (``pay[a, b]`` = total game payoff strategy ``a`` earns against
``b``) plus, for the demand-driven ensemble engine, a parallel evaluated
mask.  This module supplies two interchangeable backings behind one small
interface (``take`` / ``pair_valid`` / ``write_pairs`` / ``invalidate_row``
/ ``grow`` / ``rebuild``), both parameterised over an
:class:`~repro.xp.ArrayBackend` so the arrays can live on an accelerator
namespace:

* :class:`DensePairStore` — the historical single allocation.  On the
  NumPy backend every operation is the exact expression the engines used
  inline before this seam existed, so the dense default is bit-for-bit the
  old behavior (the golden + lane-parity suites pin it unmodified).

* :class:`BlockedPairStore` — the logical matrix in ``B x B`` physical
  blocks allocated on first write (``EvolutionConfig.paymat_block``).
  Very large ``R x n_ssets`` sweeps stop paying O(K²) up front: a sid is
  ``block = sid >> log2(B)`` away from its block coordinates, reads are
  one extra gather through a block table (slot 0 is a permanently-zero
  "absent" block, so unmapped reads need no special-casing), and only
  blocks that a fill actually touched occupy memory.  Because
  :meth:`~repro.ensemble.engine.EnsembleEngine.intern_lane` hands out sids
  near-contiguously per lane, the touched blocks cluster around the
  diagonal — resident blocks grow ~K/B-ish, not (K/B)².

  With ``block_cap`` the resident set is LRU-bounded: allocating past the
  cap evicts the least-recently-touched *mirror pair* of blocks — (bi, bj)
  and (bj, bi) retire together, and a pair's recency is the newer of the
  two, because the epoch-sum validity stamps answer queries from a single
  direction (``pair_valid`` touches the queried direction under the
  current clock tick before ``write_pairs`` may evict, and the pair rule
  extends that pin to the mirror a still-valid stamp vouches for).
  Eviction drops
  evaluated flags, which is trajectory-safe **only in the deterministic
  regime**: cycle-exact payoffs are pure functions of the strategy pair,
  so a refill reproduces the identical bits.  The expected-fitness regime
  therefore never runs blocked (its re-evaluations drift by ulps).

For the per-run :class:`~repro.core.engine.FitnessEngine`
(``track_evaluated=False``) the blocked store also speaks the plain
``paymat[...]`` indexing dialect (``__getitem__`` / ``__setitem__`` for
rows and ``(rows, cols)`` gathers, returning host arrays), so the eager
deterministic fill/fitness code and
:meth:`~repro.structure.graphs.GraphStructure.gather_fitness` consume it
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..xp import ArrayBackend, get_array_backend

__all__ = ["DensePairStore", "BlockedPairStore", "validate_paymat_block"]


def validate_paymat_block(block: int) -> None:
    """Reject invalid ``paymat_block`` values (0 = dense is valid)."""
    if block < 0 or (block and (block < 4 or block & (block - 1))):
        raise ConfigurationError(
            f"paymat_block must be 0 (dense) or a power of two >= 4, "
            f"got {block}"
        )


class DensePairStore:
    """One dense ``capacity x capacity`` payoff + evaluated allocation."""

    evictable = False

    def __init__(
        self,
        capacity: int,
        dtype: np.dtype,
        xb: ArrayBackend | None = None,
    ):
        self.xb = xb if xb is not None else get_array_backend()
        self.dtype = np.dtype(dtype)
        self._pay = self.xb.zeros((capacity, capacity), self.dtype)
        self._eval = self.xb.zeros((capacity, capacity), bool)
        self._peak_bytes = self._bytes()

    def _bytes(self) -> int:
        return int(self._pay.nbytes) + int(self._eval.nbytes)

    @property
    def capacity(self) -> int:
        return int(self._pay.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.capacity, self.capacity)

    @property
    def paymat(self):
        """The raw dense matrix (the engines' historical public view)."""
        return self._pay

    # -- access ----------------------------------------------------------------

    def take(self, rows, cols):
        xp = self.xb.xp
        return self._pay[xp.asarray(rows), xp.asarray(cols)]

    def pair_valid(self, a, b):
        xp = self.xb.xp
        a = xp.asarray(a)
        b = xp.asarray(b)
        return self._eval[a, b] & self._eval[b, a]

    def write_pairs(self, a, b, pay_ab, pay_ba) -> None:
        """Store both directions of known-host pair evaluations."""
        xb = self.xb
        a_d = xb.to_device(a)
        b_d = xb.to_device(b)
        self._pay[a_d, b_d] = xb.to_device(pay_ab)
        self._pay[b_d, a_d] = xb.to_device(pay_ba)
        self._eval[a_d, b_d] = True
        self._eval[b_d, a_d] = True

    def invalidate_row(self, sid: int) -> None:
        self._eval[sid, :] = False

    def tick(self) -> None:
        """LRU clock hook — dense stores never evict."""

    # -- lifecycle -------------------------------------------------------------

    def grow(self, new_capacity: int) -> None:
        old = self.capacity
        pay = self.xb.zeros((new_capacity, new_capacity), self.dtype)
        pay[:old, :old] = self._pay
        self._pay = pay
        evaluated = self.xb.zeros((new_capacity, new_capacity), bool)
        evaluated[:old, :old] = self._eval
        self._eval = evaluated
        self._peak_bytes = max(self._peak_bytes, self._bytes())

    def rebuild(self, idx: np.ndarray, new_capacity: int) -> "DensePairStore":
        """Compaction: gather the live grid verbatim (one-way evaluated
        flags included — exactly the historical dense compact)."""
        n_live = idx.shape[0]
        fresh = DensePairStore(new_capacity, self.dtype, self.xb)
        idx_d = self.xb.to_device(np.asarray(idx, dtype=np.intp))
        grid = (idx_d[:, None], idx_d[None, :])
        fresh._pay[:n_live, :n_live] = self._pay[grid]
        fresh._eval[:n_live, :n_live] = self._eval[grid]
        fresh._peak_bytes = max(fresh._peak_bytes, self._peak_bytes)
        return fresh

    def stats(self) -> dict[str, int]:
        return {
            "paymat_bytes": self._bytes(),
            "peak_paymat_bytes": int(self._peak_bytes),
            "paymat_block": 0,
            "blocks_resident": 0,
            "blocks_evicted": 0,
            "block_fills": 0,
        }


class BlockedPairStore:
    """The logical pair matrix in on-demand ``block x block`` shards.

    Parameters
    ----------
    capacity:
        Logical matrix edge (grows with the strategy pool).
    block:
        Shard edge ``B`` (power of two >= 4; index math is shift/mask).
    dtype:
        Payoff cell dtype (float32 in the compact-exact regime, float64
        otherwise — decided by the owning engine).
    xb:
        Array backend the pools live on.
    track_evaluated:
        Keep the per-cell evaluated mask (the ensemble engine's demand
        model).  ``False`` for the per-run eager engine, which fills
        whole rows/columns at intern time and never queries validity.
    block_cap:
        LRU bound on resident blocks (0 = unbounded).  Deterministic
        regime only — see the module docstring.
    """

    def __init__(
        self,
        capacity: int,
        block: int,
        dtype: np.dtype,
        xb: ArrayBackend | None = None,
        track_evaluated: bool = True,
        block_cap: int = 0,
    ):
        validate_paymat_block(block)
        if block == 0:
            raise ConfigurationError(
                "BlockedPairStore needs a block size (use DensePairStore "
                "for the dense layout)"
            )
        if block_cap < 0:
            raise ConfigurationError(
                f"block_cap must be >= 0 (0 = unbounded), got {block_cap}"
            )
        self.xb = xb if xb is not None else get_array_backend()
        self.dtype = np.dtype(dtype)
        self.block = block
        self.block_cap = block_cap
        self._shift = block.bit_length() - 1
        self._bmask = block - 1
        self._capacity = capacity
        self._nb = -(-capacity // block)
        #: Host-authoritative block -> slot map; slot 0 is the permanent
        #: all-zero "absent" block, so unmapped reads gather zeros/False.
        self._table = np.zeros((self._nb, self._nb), dtype=np.int64)
        self._sync_table()
        slots = 8
        self._pay = self.xb.zeros((slots, block, block), self.dtype)
        #: Validity is epoch-stamped, not bit-flagged: cell (a, b) is valid
        #: iff ``eval[a, b] == epoch[a] + epoch[b]``.  Epochs only grow,
        #: so one direction's stamp matching the current sum proves
        #: neither row was recycled since the write — validity queries
        #: ride a single gather chain.  Recycling a sid is then an O(1)
        #: counter bump; stale stamps from earlier epochs never match
        #: again (sums are strictly increasing until wraparound, which
        #: eagerly clears both directions of the wrapped row).  Epochs
        #: start at 1, so the minimum live stamp is 2 and zeroed shards —
        #: and the permanent absent block — read as invalid.
        self._eval = (
            self.xb.zeros((slots, block, block), np.uint16)
            if track_evaluated
            else None
        )
        self._sync_pools()
        self._epoch = np.ones(capacity, dtype=np.uint16)
        self._epoch_dev = (
            self._epoch if self.xb.is_numpy else self.xb.to_device(self._epoch)
        )
        self._epoch_stale = False
        self._free_slots = list(range(slots - 1, 0, -1))
        self._owner_bi = np.full(slots, -1, dtype=np.int64)
        self._owner_bj = np.full(slots, -1, dtype=np.int64)
        #: LRU bookkeeping: blocks touched at the current clock tick are
        #: never evicted, so an operation's own working set is pinned.
        self._touch = np.zeros(slots, dtype=np.int64)
        self._clock = 1
        self.blocks_resident = 0
        self.blocks_evicted = 0
        self.block_fills = 0
        self._peak_bytes = self._bytes()

    # -- views -----------------------------------------------------------------

    @property
    def evictable(self) -> bool:
        return self.block_cap > 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def shape(self) -> tuple[int, int]:
        return (self._capacity, self._capacity)

    @property
    def paymat(self) -> "BlockedPairStore":
        """The store itself — it speaks the ``paymat[...]`` gather dialect."""
        return self

    def _bytes(self) -> int:
        total = int(self._pay.nbytes) + self._table.nbytes
        if self._eval is not None:
            total += int(self._eval.nbytes) + int(self._epoch.nbytes)
        return total

    def _sync_epoch(self) -> None:
        self._epoch_dev = self.xb.to_device(self._epoch)
        self._epoch_stale = False

    def _sync_table(self) -> None:
        """Refresh the device-side gather table.

        The device table holds *pre-scaled* slot bases (``slot * B*B``) so
        the per-gather index chain is ``base[key] + rowoff + coloff`` —
        two full-size passes fewer than scaling the slot id on every
        access.  Host bookkeeping (``self._table``) keeps raw slot ids.
        """
        base = self._table.reshape(-1) * (self.block * self.block)
        self._base_flat = base if self.xb.is_numpy else self.xb.to_device(base)

    def _patch_base(self, keys, bases) -> None:
        """Repoint individual ``_base_flat`` entries after alloc/evict.

        A full ``_sync_table`` is O(nb²) and allocation events arrive
        every few generations under strategy churn, so steady-state table
        edits scatter into the cached flat view; full rebuilds remain for
        grid reshapes (``grow``) and construction only.
        """
        if self.xb.is_numpy:
            self._base_flat[keys] = bases
        else:
            keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
            vals = np.broadcast_to(
                np.asarray(bases, dtype=np.int64), keys.shape
            )
            self._base_flat[self.xb.to_device(keys)] = self.xb.to_device(
                np.ascontiguousarray(vals)
            )

    def _sync_pools(self) -> None:
        """Refresh the cached flat gather views after a pool reallocation."""
        self._pay_flat = self._pay.reshape(-1)
        self._eval_flat = (
            self._eval.reshape(-1) if self._eval is not None else None
        )

    # -- access ----------------------------------------------------------------

    def take(self, rows, cols):
        """Gather ``pay[rows, cols]`` (broadcasting index arrays).

        Flat single-array gathers: one fused integer index per table/pool
        lookup beats NumPy's multi-array fancy-indexing machinery by ~25%
        on the fitness-sized shapes that dominate the hot path.
        """
        xp = self.xb.xp
        rows = xp.asarray(rows)
        cols = xp.asarray(cols)
        base = self._base_flat[
            (rows >> self._shift) * self._nb + (cols >> self._shift)
        ]
        flat = base + ((rows & self._bmask) * self.block + (cols & self._bmask))
        return self._pay_flat[flat]

    def pair_valid(self, a, b):
        """Validity of (a, b): one gather against the epoch-sum stamps.

        Cells are stamped with ``epoch[a] + epoch[b]`` at write time and
        epochs only grow, so a single direction's stamp matching the
        current sum proves neither row was recycled since the write.
        Eviction retires mirror blocks jointly and wraparound clears both
        directions of the wrapped row, so one-way queries stay sound.
        """
        assert self._eval is not None
        if self._epoch_stale:
            self._sync_epoch()
        xp = self.xb.xp
        a = xp.asarray(a)
        b = xp.asarray(b)
        if a.shape != b.shape:
            a, b = xp.broadcast_arrays(a, b)
        base = self._base_flat[
            (a >> self._shift) * self._nb + (b >> self._shift)
        ]
        if self.block_cap:
            used = np.unique(np.atleast_1d(self.xb.to_host(base)).ravel())
            self._touch[used // (self.block * self.block)] = self._clock
        return (
            self._eval_flat[
                base + ((a & self._bmask) * self.block + (b & self._bmask))
            ]
            == self._epoch_dev[a] + self._epoch_dev[b]
        )

    def write_pairs(self, a, b, pay_ab, pay_ba) -> None:
        """Store both directions of host pair evaluations, allocating (and
        under ``block_cap`` possibly evicting) blocks as needed."""
        if self._epoch_stale:
            self._sync_epoch()
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.size == 0:
            return
        # Both directions as one fused scatter (see ``pair_valid``).
        rows = np.concatenate((a, b))
        cols = np.concatenate((b, a))
        bi = rows >> self._shift
        bj = cols >> self._shift
        self._ensure_blocks(bi, bj)
        xb = self.xb
        rows_d = xb.to_device(rows)
        cols_d = xb.to_device(cols)
        base = self._base_flat[xb.to_device(bi * self._nb + bj)]
        flat = base + (
            (rows_d & self._bmask) * self.block + (cols_d & self._bmask)
        )
        self._pay_flat[flat] = xb.to_device(
            np.concatenate(
                (
                    np.asarray(pay_ab, dtype=self.dtype),
                    np.asarray(pay_ba, dtype=self.dtype),
                )
            )
        )
        if self._eval_flat is not None:
            # Stamp both cells with the pair's epoch sum (see ``pair_valid``).
            self._eval_flat[flat] = (
                self._epoch_dev[rows_d] + self._epoch_dev[cols_d]
            )

    def set(self, rows, cols, values) -> None:
        """One-direction scatter write (the eager per-run fill dialect)."""
        r, c = np.broadcast_arrays(
            np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)
        )
        r = r.ravel()
        c = c.ravel()
        if r.size == 0:
            return
        v = np.broadcast_to(np.asarray(values), r.shape).ravel()
        bi = r >> self._shift
        bj = c >> self._shift
        self._ensure_blocks(bi, bj)
        xb = self.xb
        r_d = xb.to_device(r)
        c_d = xb.to_device(c)
        base = self._base_flat[xb.to_device(bi * self._nb + bj)]
        flat = base + ((r_d & self._bmask) * self.block + (c_d & self._bmask))
        self._pay_flat[flat] = xb.to_device(v)

    def __getitem__(self, key):
        """``pm[rows, cols]`` gathers / ``pm[row]`` materialises one logical
        row — host arrays out, so plain-NumPy consumers (the per-run
        engine's fitness math, :meth:`GraphStructure.gather_fitness`) work
        unchanged."""
        if isinstance(key, tuple):
            rows, cols = key
            return self.xb.to_host(self.take(rows, cols))
        return self.xb.to_host(
            self.take(key, np.arange(self._capacity, dtype=np.int64))
        )

    def __setitem__(self, key, values) -> None:
        if not isinstance(key, tuple):
            raise TypeError(
                "blocked paymat rows are written as pm[rows, cols] = values"
            )
        rows, cols = key
        self.set(rows, cols, values)

    def invalidate_row(self, sid: int) -> None:
        """Retire all of ``sid``'s evaluations: bump its row epoch.

        O(1) — stale cell stamps simply never match again, because epoch
        sums are strictly increasing until wraparound.  Epochs cap at
        32766 so a two-epoch sum always fits the uint16 stamps; on (rare)
        wraparound both directions of the row's resident cells are
        cleared eagerly before the epoch resets, restoring monotonicity.
        Collateral invalidation of still-live cells is trajectory-neutral
        — deterministic refills are bit-exact.
        """
        if self._eval is None:
            return
        e = int(self._epoch[sid])
        if e >= 32766:
            bi = sid >> self._shift
            off = sid & self._bmask
            row = self._table[bi]
            live = row[row > 0]
            if live.size:
                self._eval[self.xb.to_device(live), off, :] = 0
            col = self._table[:, bi]
            live = col[col > 0]
            if live.size:
                self._eval[self.xb.to_device(live), :, off] = 0
            self._epoch[sid] = 1
        else:
            self._epoch[sid] = e + 1
        self._epoch_stale = not self.xb.is_numpy

    def tick(self) -> None:
        """Advance the LRU clock: blocks touched from here on are pinned
        against eviction until the next tick."""
        self._clock += 1

    # -- allocation / eviction --------------------------------------------------

    def _grow_slots(self, min_free: int = 1) -> None:
        """Grow the slot pools so at least ``min_free`` slots are free.

        Doubling below 4096 slots keeps small stores cheap to grow; above
        that the pools are big enough that 2x slack dominates resident
        bytes, so growth drops to 1.25x (``min_free`` still wins when a
        single batch needs more — e.g. a pre-sized rebuild).
        """
        old = self._owner_bi.shape[0]
        new = old * 2 if old < 4096 else int(old * 1.25) + 1
        new = max(new, old + min_free)
        pay = self.xb.zeros((new, self.block, self.block), self.dtype)
        pay[:old] = self._pay
        self._pay = pay
        if self._eval is not None:
            evaluated = self.xb.zeros((new, self.block, self.block), np.uint16)
            evaluated[:old] = self._eval
            self._eval = evaluated
        self._sync_pools()
        for name in ("_owner_bi", "_owner_bj", "_touch"):
            arr = getattr(self, name)
            grown = np.full(new, -1 if name.startswith("_owner") else 0,
                            dtype=np.int64)
            grown[:old] = arr
            setattr(self, name, grown)
        self._free_slots.extend(range(new - 1, old - 1, -1))
        self._peak_bytes = max(self._peak_bytes, self._bytes())

    def _alloc_block(self, bi: int, bj: int) -> None:
        self._alloc_batch(
            np.array([bi], dtype=np.int64), np.array([bj], dtype=np.int64)
        )

    def _alloc_batch(self, nbi: np.ndarray, nbj: np.ndarray) -> None:
        """Map a batch of distinct absent blocks to slots, vectorised."""
        k = nbi.shape[0]
        if len(self._free_slots) < k:
            self._grow_slots(k - len(self._free_slots))
        if k <= 4 and self.xb.is_numpy:
            # Scalar fast path: churned runs allocate a mirror pair (or a
            # lone diagonal block) at a time, and basic indexing (views)
            # beats fancy-index scatter dispatch at that size.
            for bi, bj in zip(nbi.tolist(), nbj.tolist()):
                slot = self._free_slots.pop()
                self._pay[slot] = 0
                if self._eval is not None:
                    self._eval[slot] = 0
                self._table[bi, bj] = slot
                self._base_flat[bi * self._nb + bj] = slot * (
                    self.block * self.block
                )
                self._owner_bi[slot] = bi
                self._owner_bj[slot] = bj
                self._touch[slot] = self._clock
            self.blocks_resident += k
            self.block_fills += k
            return
        slots = np.asarray(self._free_slots[-k:], dtype=np.int64)
        del self._free_slots[-k:]
        # Zero the shards (reused eviction slots hold stale cells).
        slots_dev = slots if self.xb.is_numpy else self.xb.to_device(slots)
        self._pay[slots_dev] = 0
        if self._eval is not None:
            self._eval[slots_dev] = 0
        self._table[nbi, nbj] = slots
        self._patch_base(
            nbi * self._nb + nbj, slots * (self.block * self.block)
        )
        self._owner_bi[slots] = nbi
        self._owner_bj[slots] = nbj
        self._touch[slots] = self._clock
        self.blocks_resident += k
        self.block_fills += k

    def _ensure_blocks(self, bis: np.ndarray, bjs: np.ndarray) -> None:
        slots = self._table[bis, bjs]
        need = slots == 0
        if need.any():
            nbi = bis[need]
            nbj = bjs[need]
            if nbi.size > 1:
                # Drop duplicate (bi, bj) entries.  Batches are a handful
                # of blocks, where a Python set beats np.unique's sort.
                seen: set[int] = set()
                keep: list[int] = []
                for i, key in enumerate((nbi * self._nb + nbj).tolist()):
                    if key not in seen:
                        seen.add(key)
                        keep.append(i)
                if len(keep) != nbi.size:
                    nbi = nbi[keep]
                    nbj = nbj[keep]
            self._alloc_batch(nbi, nbj)
        if self.block_cap:
            self._touch[np.unique(self._table[bis, bjs])] = self._clock
            self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        if self.blocks_resident <= self.block_cap:
            return
        resident = np.nonzero(self._owner_bi >= 0)[0]
        # Mirror blocks retire together (one-way validity stamps assume a
        # valid cell's opposite-direction payoff block is still resident),
        # so a block's effective recency is the newer of the pair — and
        # current-tick pairs are the in-flight operation's working set,
        # never evicted (the cap is soft for one operation).
        mirror = self._table[
            self._owner_bj[resident], self._owner_bi[resident]
        ]
        eff = np.maximum(self._touch[resident], self._touch[mirror])
        stale = resident[eff < self._clock]
        if stale.size == 0:
            return
        order = stale[np.argsort(eff[eff < self._clock], kind="stable")]
        freed: list[int] = []
        for slot in order.tolist():
            if self.blocks_resident <= self.block_cap:
                break
            bi = int(self._owner_bi[slot])
            if bi < 0:
                continue  # already retired as its partner's mirror
            bj = int(self._owner_bj[slot])
            pair = [slot]
            ms = int(self._table[bj, bi])
            if ms > 0 and ms != slot:
                pair.append(ms)
            for s in pair:
                self._table[self._owner_bi[s], self._owner_bj[s]] = 0
                freed.append(
                    int(self._owner_bi[s]) * self._nb
                    + int(self._owner_bj[s])
                )
                self._owner_bi[s] = -1
                self._owner_bj[s] = -1
                self._free_slots.append(s)
                self.blocks_resident -= 1
                self.blocks_evicted += 1
        if freed:
            self._patch_base(np.asarray(freed, dtype=np.int64), 0)

    # -- lifecycle -------------------------------------------------------------

    def grow(self, new_capacity: int) -> None:
        nb = -(-new_capacity // self.block)
        if nb != self._nb:
            table = np.zeros((nb, nb), dtype=np.int64)
            table[: self._nb, : self._nb] = self._table
            self._table = table
            self._nb = nb
            self._sync_table()
        if new_capacity > self._epoch.shape[0]:
            epoch = np.ones(new_capacity, dtype=np.uint16)
            epoch[: self._epoch.shape[0]] = self._epoch
            self._epoch = epoch
            self._epoch_stale = not self.xb.is_numpy
            if not self._epoch_stale:
                self._epoch_dev = self._epoch
        self._capacity = new_capacity
        self._peak_bytes = max(self._peak_bytes, self._bytes())

    def rebuild(self, idx: np.ndarray, new_capacity: int) -> "BlockedPairStore":
        """Compaction: re-intern the live grid's valid pairs.

        Validity is symmetric under epoch-sum stamps (both cells carry
        the same sum, and rows invalidate both directions at once), so
        carrying only `pair_valid` survivors is trajectory-neutral —
        deterministic refills are bit-exact, a dropped pair only means a
        possible redundant re-evaluation later.
        """
        fresh = BlockedPairStore(
            new_capacity,
            self.block,
            self.dtype,
            self.xb,
            track_evaluated=self._eval is not None,
            block_cap=self.block_cap,
        )
        # Pre-size the slot pools to the live working set so the copy-in
        # below doesn't walk the doubling ladder one grow at a time.
        short = self.blocks_resident - len(fresh._free_slots)
        if short > 0:
            fresh._grow_slots(short)
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size:
            pay = self.xb.to_host(self.take(idx[:, None], idx[None, :]))
            if self._eval is not None:
                ok = self.xb.to_host(
                    self.pair_valid(idx[:, None], idx[None, :])
                )
                iu, ju = np.nonzero(np.triu(ok))
                fresh.write_pairs(iu, ju, pay[iu, ju], pay[ju, iu])
            else:
                rows, cols = np.nonzero(pay)
                fresh.set(rows, cols, pay[rows, cols])
        fresh._peak_bytes = max(fresh._peak_bytes, self._peak_bytes)
        return fresh

    def stats(self) -> dict[str, int]:
        return {
            "paymat_bytes": self._bytes(),
            "peak_paymat_bytes": int(self._peak_bytes),
            "paymat_block": self.block,
            "blocks_resident": int(self.blocks_resident),
            "blocks_evicted": int(self.blocks_evicted),
            "block_fills": int(self.block_fills),
        }
