"""Core evolutionary-game-dynamics library (the paper's model, Sections III–IV).

Public surface:

* payoffs and the PD (:class:`PayoffMatrix`, :data:`PAPER_PAYOFF`);
* memory-*n* states (:func:`num_states`, :func:`advance_view`, ...);
* strategies (:class:`Strategy`, classics, random generation, Table IV);
* game engines (scalar, vectorised, cycle-exact, Markov-exact);
* population dynamics (SSets, Nature Agent, Fermi rule, histogram fitness,
  and the interned-strategy dense :class:`FitnessEngine`);
* drivers (:func:`run_serial`, :func:`run_event_driven`, :func:`run_baseline`).
"""

from .baseline import run_baseline
from .config import PAPER_MUTATION_RATE, PAPER_PC_RATE, EvolutionConfig
from .cycle import CycleStructure, exact_payoffs, find_cycle
from .engine import FitnessEngine, StrategyPool, is_integer_payoff
from .evolution import (
    EventRecord,
    EvolutionResult,
    Snapshot,
    run_event_driven,
    run_serial,
)
from .fermi import PAPER_BETA, fermi_probability
from .game import PAPER_ROUNDS, GameResult, play_game, round_robin
from .markov import expected_payoffs, stationary_cooperation_rate, transition_model
from .nature import GenerationEvents, MutationDecision, NatureAgent, PCDecision
from .payoff import COOPERATE, DEFECT, PAPER_PAYOFF, PayoffMatrix
from .payoff_cache import PayoffCache, StrategyHistogram
from .population import Population
from .progress import ProgressTick, progress_callback, progress_scope
from .sset import SSet
from .states import (
    MAX_MEMORY_STEPS,
    MEMORY_ONE_GRAY_ORDER,
    StateRow,
    advance_view,
    encode_round,
    history_to_view,
    num_states,
    state_table,
    swap_perspective,
    swap_perspective_array,
    view_mask,
    view_to_history,
)
from .strategy import (
    CLASSIC_FACTORIES,
    Strategy,
    all_c,
    all_d,
    all_memory_one_strategies,
    enumerate_pure_strategies,
    grim,
    gtft,
    paper_table_v_rows,
    random_mixed,
    random_pure,
    strategy_space_size,
    tf2t,
    tft,
    wsls,
)
from .vectorgame import (
    cycle_payoffs_pairs,
    payoff_matrix,
    play_pairs,
    stack_tables,
)

__all__ = [
    # payoff
    "PayoffMatrix", "PAPER_PAYOFF", "COOPERATE", "DEFECT",
    # states
    "MAX_MEMORY_STEPS", "MEMORY_ONE_GRAY_ORDER", "StateRow", "advance_view",
    "encode_round", "history_to_view", "num_states", "state_table",
    "swap_perspective", "swap_perspective_array", "view_mask",
    "view_to_history",
    # strategy
    "Strategy", "CLASSIC_FACTORIES", "all_c", "all_d",
    "all_memory_one_strategies", "enumerate_pure_strategies", "grim", "gtft",
    "paper_table_v_rows", "random_mixed", "random_pure",
    "strategy_space_size", "tf2t", "tft", "wsls",
    # games
    "GameResult", "PAPER_ROUNDS", "play_game", "round_robin",
    "payoff_matrix", "play_pairs", "stack_tables", "cycle_payoffs_pairs",
    "CycleStructure", "exact_payoffs", "find_cycle",
    "expected_payoffs", "stationary_cooperation_rate", "transition_model",
    # population dynamics
    "PayoffCache", "StrategyHistogram", "SSet", "Population",
    "FitnessEngine", "StrategyPool", "is_integer_payoff",
    "NatureAgent", "GenerationEvents", "PCDecision", "MutationDecision",
    "fermi_probability", "PAPER_BETA",
    # drivers
    "EvolutionConfig", "PAPER_PC_RATE", "PAPER_MUTATION_RATE",
    "EvolutionResult", "EventRecord", "Snapshot",
    "run_serial", "run_event_driven", "run_baseline",
    # progress hooks
    "ProgressTick", "progress_scope", "progress_callback",
]
