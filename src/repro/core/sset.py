"""Strategy Sets — the paper's central abstraction (Section IV.D).

An SSet is a group of agents that all play the same strategy; its fitness is
the sum of its agents' fitness.  The SSet is simultaneously

* the unit of population dynamics (learning and mutation replace an SSet's
  strategy wholesale), and
* the unit of distribution (SSets map to MPI ranks; the agents inside an
  SSet map to threads).

In the serial core the SSet is a thin record; the heavy machinery lives in
the histogram fitness of :mod:`repro.core.payoff_cache` and in the parallel
framework's decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .strategy import Strategy

__all__ = ["SSet"]


@dataclass
class SSet:
    """One Strategy Set: identity, current strategy, and bookkeeping."""

    sset_id: int
    strategy: Strategy
    n_agents: int = 1
    #: Fitness from the most recent evaluation (sum over the SSet's games).
    fitness: float = 0.0
    #: Number of times this SSet adopted a teacher's strategy.  Strategy
    #: writes go through :meth:`repro.core.Population.set_strategy` (and its
    #: adopt/mutate wrappers) so the population histogram stays in sync;
    #: the SSet record itself exposes no strategy-writing methods.
    adoptions: int = field(default=0, repr=False)
    #: Number of times this SSet received a mutant strategy.
    mutations: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.sset_id < 0:
            raise ConfigurationError(f"sset_id must be >= 0, got {self.sset_id}")
        if self.n_agents < 1:
            raise ConfigurationError(f"n_agents must be >= 1, got {self.n_agents}")

    def games_per_agent(self, n_opponents: int) -> int:
        """Opponent games each agent handles, ``ceil(s_a)`` (Section IV.A).

        With ``a`` agents and ``s`` opponent strategies, each agent is
        assigned about ``s / a`` opposing SSets.
        """
        return -(-n_opponents // self.n_agents)
