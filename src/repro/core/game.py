"""Iterated Prisoner's Dilemma game engine (paper Section IV.C, ``IPD()``).

This is the faithful, readable reference implementation of the paper's agent
kernel: both players maintain a *current view* of the last ``n`` rounds,
look up their move in their strategy table, play, receive payoffs, and shift
the round into their views.  Optional trembling-hand **errors** (Section
III.F) flip an executed move with probability ``noise`` — the flipped move is
what both players observe and what earns the payoff, which is exactly the
error model under which WSLS beats TFT.

Faster equivalents:

* :mod:`repro.core.vectorgame` — many games at once with NumPy;
* :mod:`repro.core.cycle` — exact O(cycle) evaluation of deterministic games;
* :mod:`repro.core.markov` — exact *expected* payoffs for mixed/noisy games.

All of them are tested to agree with this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, StrategyError
from .payoff import PAPER_PAYOFF, PayoffMatrix
from .states import advance_view
from .strategy import Strategy

__all__ = ["GameResult", "play_game", "round_robin"]

#: Paper Section V.C: "The maximum number of rounds for a generation of
#: Iterated Prisoner's Dilemma was set to 200".
PAPER_ROUNDS: int = 200


@dataclass(frozen=True)
class GameResult:
    """Outcome of one iterated game between two strategies."""

    payoff_a: float
    payoff_b: float
    rounds: int
    #: Fraction of all moves (both players) that were cooperation.
    cooperation_rate: float
    #: Optional per-round moves, shape (rounds, 2), only kept when requested.
    moves: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def mean_payoff_a(self) -> float:
        """Per-round average payoff to player A."""
        return self.payoff_a / self.rounds

    @property
    def mean_payoff_b(self) -> float:
        """Per-round average payoff to player B."""
        return self.payoff_b / self.rounds


def play_game(
    strategy_a: Strategy,
    strategy_b: Strategy,
    rounds: int = PAPER_ROUNDS,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
    rng: np.random.Generator | None = None,
    record_moves: bool = False,
) -> GameResult:
    """Play one iterated game, mirroring the paper's ``IPD()`` pseudocode.

    Parameters
    ----------
    strategy_a, strategy_b:
        The two strategy tables; must share ``memory_steps``.
    rounds:
        Number of rounds ("maxRounds"); the paper uses 200.
    payoff:
        Payoff matrix; the paper uses [R,S,T,P] = [3,0,4,1].
    noise:
        Probability that an executed move flips (0 disables errors).
    rng:
        Required when either strategy is mixed or ``noise > 0``.
    record_moves:
        Keep the full move history in the result (memory-hungry for long
        games; intended for analysis and tests).
    """
    if strategy_a.memory_steps != strategy_b.memory_steps:
        raise StrategyError(
            "strategies must share memory_steps, got "
            f"{strategy_a.memory_steps} vs {strategy_b.memory_steps}"
        )
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if not 0.0 <= noise <= 1.0:
        raise ConfigurationError(f"noise must lie in [0, 1], got {noise}")
    stochastic = noise > 0.0 or not strategy_a.is_pure or not strategy_b.is_pure
    if stochastic and rng is None:
        raise ConfigurationError(
            "mixed strategies or noise require an rng for sampling"
        )

    n = strategy_a.memory_steps
    view_a = 0  # implicit all-cooperate history; first move is table[0]
    view_b = 0
    pay_a = 0.0
    pay_b = 0.0
    cooperations = 0
    moves = np.empty((rounds, 2), dtype=np.uint8) if record_moves else None

    for r in range(rounds):
        move_a = strategy_a.move(view_a, rng)
        move_b = strategy_b.move(view_b, rng)
        if noise > 0.0:
            assert rng is not None
            if rng.random() < noise:
                move_a ^= 1
            if rng.random() < noise:
                move_b ^= 1
        pay_a += payoff.vector[2 * move_a + move_b]
        pay_b += payoff.vector[2 * move_b + move_a]
        cooperations += (move_a == 0) + (move_b == 0)
        if moves is not None:
            moves[r, 0] = move_a
            moves[r, 1] = move_b
        view_a = advance_view(view_a, move_a, move_b, n)
        view_b = advance_view(view_b, move_b, move_a, n)

    if moves is not None:
        moves.setflags(write=False)
    return GameResult(
        payoff_a=pay_a,
        payoff_b=pay_b,
        rounds=rounds,
        cooperation_rate=cooperations / (2 * rounds),
        moves=moves,
    )


def round_robin(
    strategies: list[Strategy],
    rounds: int = PAPER_ROUNDS,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
    rng: np.random.Generator | None = None,
    include_self: bool = True,
) -> np.ndarray:
    """Axelrod-style tournament: total payoff matrix over all ordered pairs.

    ``result[i, j]`` is the payoff strategy ``i`` earns when *it* plays a
    game against strategy ``j``.  For deterministic games the matrix is
    consistent (``result[i, j]`` and ``result[j, i]`` come from the same
    play sequence); for stochastic games each ordered pair is an independent
    game instance, matching the paper's model where SSet i's agents and
    SSet j's agents play separate games.
    """
    k = len(strategies)
    out = np.zeros((k, k), dtype=np.float64)
    for i in range(k):
        for j in range(k):
            if i == j and not include_self:
                continue
            res = play_game(strategies[i], strategies[j], rounds, payoff, noise, rng)
            out[i, j] = res.payoff_a
    return out
