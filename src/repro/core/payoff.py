"""Prisoner's Dilemma payoff matrices (paper Table I).

The paper uses fitness values ``f[R, S, T, P] = [3, 0, 4, 1]``: mutual
cooperation pays the Reward ``R`` to both, mutual defection the Punishment
``P``, and a unilateral defector receives the Temptation ``T`` while the
cooperator is left with the Sucker payoff ``S``.  The dilemma requires
``T > R > P > S`` (Section III.A).

Moves are encoded throughout the package as ``0 = cooperate`` and
``1 = defect``, following the paper ("If in the previous round both the agent
and opponent cooperated (played a 0) ...").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PayoffMatrix", "PAPER_PAYOFF", "COOPERATE", "DEFECT"]

#: Move encoding used across the whole package.
COOPERATE: int = 0
DEFECT: int = 1


@dataclass(frozen=True)
class PayoffMatrix:
    """Two-player symmetric Prisoner's Dilemma payoffs.

    Parameters
    ----------
    reward:
        ``R`` — payoff to each player after mutual cooperation.
    sucker:
        ``S`` — payoff to a cooperator whose opponent defected.
    temptation:
        ``T`` — payoff to a defector whose opponent cooperated.
    punishment:
        ``P`` — payoff to each player after mutual defection.
    require_dilemma:
        When true (default), enforce the PD ordering ``T > R > P > S``.
        Disable to model arbitrary symmetric 2x2 games with the same engine.
    """

    reward: float = 3.0
    sucker: float = 0.0
    temptation: float = 4.0
    punishment: float = 1.0
    require_dilemma: bool = True
    #: Payoff to the focal player indexed by ``2 * my_move + opp_move``
    #: (so index 0 = CC -> R, 1 = CD -> S, 2 = DC -> T, 3 = DD -> P).
    vector: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.require_dilemma and not (
            self.temptation > self.reward > self.punishment > self.sucker
        ):
            raise ConfigurationError(
                "not a Prisoner's Dilemma: need T > R > P > S, got "
                f"T={self.temptation}, R={self.reward}, "
                f"P={self.punishment}, S={self.sucker}"
            )
        vec = np.array(
            [self.reward, self.sucker, self.temptation, self.punishment],
            dtype=np.float64,
        )
        vec.setflags(write=False)
        object.__setattr__(self, "vector", vec)

    def payoff(self, my_move: int, opp_move: int) -> float:
        """Payoff to the focal player for one round."""
        return float(self.vector[2 * my_move + opp_move])

    def both(self, move_a: int, move_b: int) -> tuple[float, float]:
        """Payoffs ``(to_a, to_b)`` for one round of play."""
        return self.payoff(move_a, move_b), self.payoff(move_b, move_a)

    @property
    def max_per_round(self) -> float:
        """Largest payoff obtainable in a single round (``T`` for a PD)."""
        return float(self.vector.max())

    @property
    def min_per_round(self) -> float:
        """Smallest payoff obtainable in a single round (``S`` for a PD)."""
        return float(self.vector.min())

    def key(self) -> tuple[float, float, float, float]:
        """Hashable identity used by payoff caches."""
        return (self.reward, self.sucker, self.temptation, self.punishment)

    def as_table(self) -> list[list[tuple[float, float]]]:
        """Table I layout: ``[[CC, CD], [DC, DD]]`` with (agent, opponent) pairs."""
        return [
            [(self.reward, self.reward), (self.sucker, self.temptation)],
            [(self.temptation, self.sucker), (self.punishment, self.punishment)],
        ]


#: The payoff matrix used for every experiment in the paper (Section V.C).
PAPER_PAYOFF = PayoffMatrix()
