"""Vectorised iterated-game kernels (the "thread-level" inner loop).

The paper parallelises the per-SSet game loop across OpenMP threads; in
NumPy the analogous optimisation is to advance *all* pairings one round at a
time with fancy indexing, so the per-round work is a handful of vector ops
instead of a Python-level loop per game.

Two entry points:

* :func:`play_pairs` — arbitrary (a, b) pairings given as index arrays;
* :func:`payoff_matrix` — all ordered pairs among K strategies at once,
  which is exactly the per-generation fitness kernel of the population model
  (every SSet plays every strategy).

Both are bit-for-bit equal to :func:`repro.core.game.play_game` for pure
strategies without noise, and distributionally equal otherwise (they are
validated against the scalar engine in the test suite).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ConfigurationError, StrategyError
from .payoff import PAPER_PAYOFF, PayoffMatrix
from .states import swap_perspective_array
from .strategy import Strategy

__all__ = [
    "stack_tables",
    "play_pairs",
    "play_pairs_uniforms",
    "sampled_draws_per_round",
    "payoff_matrix",
    "cycle_payoffs_pairs",
]


def stack_tables(strategies: list[Strategy]) -> tuple[np.ndarray, int, bool]:
    """Stack strategy tables into one (K, 4**n) array.

    Returns ``(tables, memory_steps, any_mixed)``.  Pure tables are stacked
    as uint8; if any strategy is mixed, everything is cast to defection
    probabilities (float64).
    """
    if not strategies:
        raise StrategyError("need at least one strategy")
    n = strategies[0].memory_steps
    if any(s.memory_steps != n for s in strategies):
        raise StrategyError("all strategies must share memory_steps")
    any_mixed = any(not s.is_pure for s in strategies)
    if any_mixed:
        tables = np.stack([s.defect_probabilities() for s in strategies])
    else:
        tables = np.stack([s.table for s in strategies])
    return tables, n, any_mixed


@lru_cache(maxsize=8)
def _mirror_row(n_states: int) -> np.ndarray:
    """Cached perspective-swap permutation (read-only) for one state count.

    Recomputing it per call was a measurable fixed cost of the engines'
    small fill batches.
    """
    memory_steps = (n_states.bit_length() - 1) // 2
    mirror = swap_perspective_array(np.arange(n_states), memory_steps)
    mirror.flags.writeable = False
    return mirror


def _moves_from_tables(
    tables: np.ndarray,
    idx: np.ndarray,
    views: np.ndarray,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Moves for each game given the (possibly mixed) stacked tables."""
    entry = tables[idx, views]
    if tables.dtype == np.uint8:
        return entry
    if rng is None:
        raise ConfigurationError("mixed strategies require an rng")
    return (rng.random(entry.shape) < entry).astype(np.uint8)


def _apply_noise(
    moves: np.ndarray, noise: float, rng: np.random.Generator | None
) -> np.ndarray:
    if noise <= 0.0:
        return moves
    if rng is None:
        raise ConfigurationError("noise > 0 requires an rng")
    flips = (rng.random(moves.shape) < noise).astype(np.uint8)
    return moves ^ flips


def play_pairs(
    strategies: list[Strategy],
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    rounds: int,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Play ``len(a_idx)`` independent games simultaneously.

    Returns ``(payoffs_a, payoffs_b)`` — total payoffs per game to the
    a-side and b-side players.
    """
    a_idx = np.asarray(a_idx, dtype=np.intp)
    b_idx = np.asarray(b_idx, dtype=np.intp)
    if a_idx.shape != b_idx.shape or a_idx.ndim != 1:
        raise ConfigurationError("a_idx and b_idx must be equal-length 1-D arrays")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    tables, n, _ = stack_tables(strategies)
    mask = (4**n) - 1
    n_games = a_idx.shape[0]

    views_a = np.zeros(n_games, dtype=np.int64)
    views_b = np.zeros(n_games, dtype=np.int64)
    pay_a = np.zeros(n_games, dtype=np.float64)
    pay_b = np.zeros(n_games, dtype=np.float64)
    vec = payoff.vector

    for _ in range(rounds):
        moves_a = _apply_noise(
            _moves_from_tables(tables, a_idx, views_a, rng), noise, rng
        )
        moves_b = _apply_noise(
            _moves_from_tables(tables, b_idx, views_b, rng), noise, rng
        )
        code_a = 2 * moves_a.astype(np.int64) + moves_b
        code_b = 2 * moves_b.astype(np.int64) + moves_a
        pay_a += vec[code_a]
        pay_b += vec[code_b]
        views_a = ((views_a << 2) | code_a) & mask
        views_b = ((views_b << 2) | code_b) & mask
    return pay_a, pay_b


def sampled_draws_per_round(mixed: bool, noise: float) -> int:
    """Uniform draws one round of :func:`play_pairs` consumes per game.

    The per-round draw slots, in stream order, are ``[a_mix?, a_noise?,
    b_mix?, b_noise?]`` — a mixed-table move draw and a noise-flip draw per
    side, each present only when the regime uses it.  ``mixed`` must be the
    *configuration's* mixed flag (a mixed run stacks float tables even when
    every live strategy happens to be pure, and float tables always consume
    the move draw), not a property of the current strategies.
    """
    return (2 if mixed else 0) + (2 if noise > 0.0 else 0)


def play_pairs_uniforms(
    tables,
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    rounds: int,
    payoff: PayoffMatrix,
    noise: float,
    uniforms: np.ndarray,
    xb=None,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`play_pairs` over pre-drawn uniforms, on the ``repro.xp`` seam.

    ``uniforms`` has shape ``(rounds, D, n_games)`` with ``D =``
    :func:`sampled_draws_per_round`; slot ``uniforms[r, s]`` replaces the
    ``s``-th ``rng.random(...)`` call round ``r`` of :func:`play_pairs`
    would make.  Because the Philox generator fills a ``(rounds, D, G)``
    request in C order — exactly ``rounds * D`` sequential length-``G``
    draws — ``play_pairs_uniforms(..., uniforms=rng.random((rounds, D,
    G)))`` is **bit-identical** to ``play_pairs(..., rng=rng)`` on the same
    pairings.  Every per-round operation is elementwise per game, so
    concatenating several callers' games (and their uniform blocks) along
    the games axis preserves each caller's bits — the property the batched
    sampled engine uses to fuse one generation's (or one ensemble
    generation's many lanes') games into a single kernel call.

    ``tables`` is a pre-stacked ``(K, 4**n)`` array in the
    :func:`stack_tables` layout: uint8 rows play deterministically per
    view, float rows are defection probabilities resolved against the mix
    draw.  ``xb`` is an :class:`repro.xp.ArrayBackend`; the round loop runs
    on its namespace (functional updates only, so CuPy/JAX namespaces work
    unchanged) and results return as host float64 arrays.
    """
    from ..xp import get_array_backend

    if xb is None:
        xb = get_array_backend()
    xp = xb.xp
    a_idx = np.asarray(a_idx, dtype=np.intp)
    b_idx = np.asarray(b_idx, dtype=np.intp)
    if a_idx.shape != b_idx.shape or a_idx.ndim != 1:
        raise ConfigurationError("a_idx and b_idx must be equal-length 1-D arrays")
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    n_games = a_idx.shape[0]
    mixed = tables.dtype != np.uint8
    draws = sampled_draws_per_round(mixed, noise)
    if draws == 0:
        raise ConfigurationError(
            "play_pairs_uniforms serves sampled games only (noise > 0 or "
            "mixed tables); pure noiseless pairings are deterministic — "
            "use cycle_payoffs_pairs"
        )
    expected_shape = (rounds, draws, n_games)
    if tuple(uniforms.shape) != expected_shape:
        raise ConfigurationError(
            f"uniforms must have shape (rounds, draws_per_round, n_games) "
            f"= {expected_shape}, got {tuple(uniforms.shape)}"
        )
    mask = tables.shape[1] - 1

    dev_tables = xb.to_device(tables)
    dev_u = xb.to_device(uniforms)
    dev_a = xb.to_device(a_idx)
    dev_b = xb.to_device(b_idx)
    views_a = xp.zeros(n_games, dtype=xp.int64)
    views_b = xp.zeros(n_games, dtype=xp.int64)
    pay_a = xp.zeros(n_games, dtype=xp.float64)
    pay_b = xp.zeros(n_games, dtype=xp.float64)
    vec = xb.to_device(payoff.vector)

    for r in range(rounds):
        slot = 0
        entry_a = dev_tables[dev_a, views_a]
        if mixed:
            moves_a = (dev_u[r, slot] < entry_a).astype(xp.uint8)
            slot += 1
        else:
            moves_a = entry_a
        if noise > 0.0:
            flips = (dev_u[r, slot] < noise).astype(xp.uint8)
            moves_a = moves_a ^ flips
            slot += 1
        entry_b = dev_tables[dev_b, views_b]
        if mixed:
            moves_b = (dev_u[r, slot] < entry_b).astype(xp.uint8)
            slot += 1
        else:
            moves_b = entry_b
        if noise > 0.0:
            flips = (dev_u[r, slot] < noise).astype(xp.uint8)
            moves_b = moves_b ^ flips
            slot += 1
        code_a = 2 * moves_a.astype(xp.int64) + moves_b
        code_b = 2 * moves_b.astype(xp.int64) + moves_a
        pay_a = pay_a + vec[code_a]
        pay_b = pay_b + vec[code_b]
        views_a = ((views_a << 2) | code_a) & mask
        views_b = ((views_b << 2) | code_b) & mask
    return xb.to_host(pay_a), xb.to_host(pay_b)


def cycle_payoffs_pairs(
    tables: np.ndarray,
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    rounds: int,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    compact_sums: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact payoffs for many pure, noiseless pairings at once.

    The batched counterpart of :func:`repro.core.cycle.exact_payoffs`: each
    pairing's joint history is a deterministic walk over the ``4**n`` view
    states (the opponent's view is the bit-swapped mirror), so one round is
    a fixed *round map* ``view -> next view`` with a fixed per-state payoff.
    Instead of simulating round by round, the map is raised to the
    ``rounds``-th power by **exponentiation by squaring** — each doubling
    composes the map with itself and adds the payoff-sum tables — so the
    cost is ``O(n_pairs * 4**n * log2(rounds))`` regardless of cycle
    structure.  A 200-round (or 200-million-round) game costs ~8 doublings
    of tiny arrays.

    ``tables`` is a stacked ``(K, 4**n)`` uint8 array (one row per pure
    strategy); ``a_idx``/``b_idx`` index rows.  Returns ``(pay_a, pay_b)``
    — total payoffs per pairing to each side.

    For **integer-valued** payoff matrices the result is float-exact, hence
    bit-identical to :func:`~repro.core.cycle.exact_payoffs` regardless of
    summation order; non-integer payoffs can differ from the scalar engine
    in the last ulp (different association of the same sums).  This is the
    fill kernel of the deterministic-regime
    :class:`repro.core.engine.FitnessEngine`, which is why that engine
    requires integer payoffs.

    ``compact_sums`` keeps the per-block payoff-sum tables in float32 —
    the kernel is gather-bound, so halving the moved bytes is a measurable
    win for the engines' fill batches.  Callers must guarantee the payoff
    matrix is integer-valued with ``rounds * max|payoff| < 2**24`` (every
    partial sum then remains float32-exact); the returned totals are
    float64 and bit-identical to the default path.
    """
    if tables.dtype != np.uint8:
        raise StrategyError(
            "cycle_payoffs_pairs needs stacked pure (uint8) tables, got "
            f"dtype {tables.dtype}"
        )
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    a_idx = np.asarray(a_idx, dtype=np.intp)
    b_idx = np.asarray(b_idx, dtype=np.intp)
    if a_idx.shape != b_idx.shape or a_idx.ndim != 1:
        raise ConfigurationError("a_idx and b_idx must be equal-length 1-D arrays")
    n_pairs = a_idx.shape[0]
    if n_pairs == 0:
        return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.float64)
    n_states = tables.shape[1]
    mask = n_states - 1
    mirror = _mirror_row(n_states)
    vec = payoff.vector

    if compact_sums:
        vec = vec.astype(np.float32)

    # One-round tables, per pairing and view state: the move pair played
    # from view v, the successor view, and both sides' round payoffs.  The
    # successor is stored as a *flat* index into the ravelled (L, S)
    # arrays (row offset baked in), so every composition below is a single
    # cheap 1-D fancy gather.
    moves_a = tables[a_idx].astype(np.int64)  # (L, S)
    moves_b = tables[b_idx][:, mirror].astype(np.int64)
    code = 2 * moves_a + moves_b
    offsets = (np.arange(n_pairs, dtype=np.int64) * n_states)[:, None]
    step = ((((np.arange(n_states, dtype=np.int64)[None, :] << 2) | code)
             & mask) + offsets)
    sum_a = vec[code]  # payoff sums over the current 2**k-round block
    sum_b = vec[2 * moves_b + moves_a]

    view = offsets[:, 0].copy()  # all games start all-C (state 0 per row)
    total_a = np.zeros(n_pairs, dtype=np.float64)
    total_b = np.zeros(n_pairs, dtype=np.float64)

    remaining = rounds
    while True:
        if remaining & 1:
            total_a += sum_a.ravel()[view]
            total_b += sum_b.ravel()[view]
            view = step.ravel()[view]
        remaining >>= 1
        if not remaining:
            break
        # Square the block: 2**(k+1) rounds = 2**k rounds, then 2**k more
        # from wherever the walk landed.
        sum_a = sum_a + sum_a.ravel()[step]
        sum_b = sum_b + sum_b.ravel()[step]
        step = step.ravel()[step]
    return total_a, total_b


def payoff_matrix(
    strategies: list[Strategy],
    rounds: int,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """All-ordered-pairs payoff matrix among K strategies.

    ``out[i, j]`` is the total payoff strategy ``i`` earns as the focal
    player of a game against strategy ``j``.  For pure noiseless strategies
    this equals the scalar engine's result exactly and the (i, j)/(j, i)
    entries describe the same deterministic play; for stochastic games every
    ordered pair is an independent game instance (the paper's semantics —
    SSet i's agents and SSet j's agents run separate games).

    Cost is O(K^2 * rounds) vector work; prefer
    :class:`repro.core.payoff_cache.PayoffCache` when strategies repeat
    across generations.
    """
    tables, n, _ = stack_tables(strategies)
    k = tables.shape[0]
    mask = (4**n) - 1
    row = np.arange(k, dtype=np.intp)[:, None]
    col = np.arange(k, dtype=np.intp)[None, :]
    row_b = np.broadcast_to(row, (k, k))
    col_b = np.broadcast_to(col, (k, k))

    views = np.zeros((k, k), dtype=np.int64)  # row player's view vs column
    views_opp = np.zeros((k, k), dtype=np.int64)  # column player's view vs row
    pay = np.zeros((k, k), dtype=np.float64)
    vec = payoff.vector

    deterministic = tables.dtype == np.uint8 and noise <= 0.0
    for _ in range(rounds):
        moves = _apply_noise(
            _moves_from_tables(tables, row_b, views, rng), noise, rng
        )
        if deterministic:
            # Same game seen from the other side: the transpose.
            opp_moves = moves.T
        else:
            opp_moves = _apply_noise(
                _moves_from_tables(tables, col_b, views_opp, rng), noise, rng
            )
        code = 2 * moves.astype(np.int64) + opp_moves
        pay += vec[code]
        views = ((views << 2) | code) & mask
        if not deterministic:
            # Track the opponent's view of each independent game instance.
            code_opp = 2 * opp_moves.astype(np.int64) + moves
            views_opp = ((views_opp << 2) | code_opp) & mask
    return pay
