"""Population-level metrics (cooperation, diversity, dominance)."""

from __future__ import annotations

import math

import numpy as np

from ..core.cycle import exact_payoffs
from ..core.payoff import PAPER_PAYOFF, PayoffMatrix
from ..core.population import Population
from ..errors import ConfigurationError

__all__ = [
    "population_cooperation_rate",
    "strategy_richness",
    "strategy_entropy",
    "dominance_timeline",
]


def population_cooperation_rate(
    population: Population,
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
) -> float:
    """Expected cooperation rate of a random pairwise game in the population.

    Weighted over the strategy histogram (count_i * count_j pairings of
    distinct SSet slots), using the exact cycle engine — only defined for
    pure populations.
    """
    hist = population.histogram
    items = [(hist.exemplars[k], c) for k, c in hist.counts.items()]
    total_weight = 0.0
    total_coop = 0.0
    for i, (strat_a, count_a) in enumerate(items):
        for strat_b, count_b in items[i:]:
            if not (strat_a.is_pure and strat_b.is_pure):
                raise ConfigurationError(
                    "population cooperation rate requires pure strategies"
                )
            weight = count_a * count_b
            _, _, coop = exact_payoffs(strat_a, strat_b, rounds, payoff)
            total_weight += weight
            total_coop += weight * coop
    return total_coop / total_weight


def strategy_richness(population: Population) -> int:
    """Number of distinct strategies present."""
    return population.histogram.distinct


def strategy_entropy(population: Population) -> float:
    """Shannon entropy (nats) of the strategy distribution over SSets."""
    counts = np.array(list(population.histogram.counts.values()), dtype=np.float64)
    probs = counts / counts.sum()
    return float(-(probs * np.log(probs)).sum())


def dominance_timeline(snapshots) -> list[tuple[int, float]]:
    """(generation, dominant share) per snapshot — Fig. 2's convergence arc."""
    out = []
    for snap in snapshots:
        out.append((snap.generation, snap.dominant_share))
    return out


def perfect_entropy(n_ssets: int) -> float:
    """Entropy of a maximally diverse population (one strategy per SSet)."""
    if n_ssets < 1:
        raise ConfigurationError(f"n_ssets must be >= 1, got {n_ssets}")
    return math.log(n_ssets)
