"""Invasion analysis: which strategies resist which (ESS structure).

Formalises the paper's population-dynamics question — "whether or not a
homogenous population of a given strategy will resist invasion by mutant
strategies" (Section III.C) — under the SSet fitness model: in a resident
population of N SSets with one invading SSet,

    f_resident = (N - 2) * pay(r, r) + pay(r, i)
    f_invader  = (N - 1) * pay(i, r)

(the self-game is excluded, matching the drivers' default).  The invader
can spread through pairwise-comparison learning only if its fitness
exceeds the residents' — the teacher-strictly-fitter gate.

This module is what documents the Fig. 2 deviation quantitatively: under
the paper's payoffs with errors, GRIM and WSLS are *both* uninvadable by
every pure memory-one strategy, so the evolved winner is decided by basin
entry rather than stability (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.payoff import PAPER_PAYOFF, PayoffMatrix
from ..core.payoff_cache import PayoffCache
from ..core.strategy import Strategy
from ..errors import ConfigurationError

__all__ = ["InvasionResult", "invasion_fitness", "can_invade", "uninvadable_by"]


@dataclass(frozen=True)
class InvasionResult:
    """Fitness comparison of one invader SSet against a resident population."""

    resident_fitness: float
    invader_fitness: float

    @property
    def invades(self) -> bool:
        """True when the invader is strictly fitter (can teach residents)."""
        return self.invader_fitness > self.resident_fitness


def invasion_fitness(
    resident: Strategy,
    invader: Strategy,
    n_ssets: int = 100,
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
) -> InvasionResult:
    """Fitness of a single invading SSet in a resident population.

    Uses exact expected payoffs, so the result is deterministic for any
    noise level.
    """
    if n_ssets < 3:
        raise ConfigurationError(
            f"invasion analysis needs at least 3 SSets, got {n_ssets}"
        )
    cache = PayoffCache(rounds=rounds, payoff=payoff, noise=noise, expected=True)
    pay_rr = cache.payoff_to(resident, resident)
    pay_ri = cache.payoff_to(resident, invader)
    pay_ir = cache.payoff_to(invader, resident)
    return InvasionResult(
        resident_fitness=(n_ssets - 2) * pay_rr + pay_ri,
        invader_fitness=(n_ssets - 1) * pay_ir,
    )


def can_invade(
    resident: Strategy,
    invader: Strategy,
    n_ssets: int = 100,
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
) -> bool:
    """Whether ``invader`` is strictly fitter than the residents."""
    return invasion_fitness(
        resident, invader, n_ssets, rounds, payoff, noise
    ).invades


def uninvadable_by(
    resident: Strategy,
    challengers: list[Strategy],
    n_ssets: int = 100,
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
) -> list[Strategy]:
    """The challengers that *fail* to invade ``resident``.

    ``resident`` is uninvadable within the challenger set (an empirical
    ESS) when the returned list contains every challenger.
    """
    return [
        c
        for c in challengers
        if not can_invade(resident, c, n_ssets, rounds, payoff, noise)
    ]
