"""Lloyd k-means clustering, from scratch (paper Figure 2).

The paper clusters the final population's strategy raster with "Lloyd
k-means clustering [36], allowing strategies that are more prevalent to be
more easily identified".  We implement Lloyd's algorithm directly (k-means++
seeding, multiple restarts) rather than importing one, per the reproduction
ground rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["KMeansResult", "lloyd_kmeans", "cluster_order"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit."""

    centers: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest = ((data - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a chosen center.
            centers[j:] = data[int(rng.integers(n))]
            break
        probs = closest / total
        idx = int(rng.choice(n, p=probs))
        centers[j] = data[idx]
        dist = ((data - centers[j]) ** 2).sum(axis=1)
        np.minimum(closest, dist, out=closest)
    return centers


def _lloyd_once(
    data: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
    rng: np.random.Generator,
) -> KMeansResult:
    k = centers.shape[0]
    labels = np.zeros(data.shape[0], dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step.
        d2 = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        # Update step.
        new_centers = centers.copy()
        for j in range(k):
            members = data[labels == j]
            if len(members) == 0:
                # Re-seed an empty cluster at the point farthest from its center.
                worst = int(d2.min(axis=1).argmax())
                new_centers[j] = data[worst]
            else:
                new_centers[j] = members.mean(axis=0)
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift < tol:
            break
    d2 = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(data.shape[0]), labels].sum())
    return KMeansResult(
        centers=centers, labels=labels, inertia=inertia, iterations=iteration
    )


def lloyd_kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster rows of ``data`` into ``k`` groups (best of ``n_init`` runs)."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ConfigurationError(f"data must be a non-empty 2-D array, got {data.shape}")
    if not 1 <= k <= data.shape[0]:
        raise ConfigurationError(
            f"k must lie in 1..{data.shape[0]}, got {k}"
        )
    if n_init < 1 or max_iter < 1:
        raise ConfigurationError("n_init and max_iter must be >= 1")
    best: KMeansResult | None = None
    for _ in range(n_init):
        centers = _plus_plus_init(data, k, rng)
        result = _lloyd_once(data, centers, max_iter, tol, rng)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def cluster_order(result: KMeansResult) -> np.ndarray:
    """Row permutation grouping cluster members, largest cluster first.

    Applying this order to the strategy raster reproduces the paper's
    Figure 2(b) presentation where the dominant (WSLS) block is visually
    contiguous.
    """
    sizes = result.cluster_sizes()
    cluster_rank = np.argsort(-sizes, kind="stable")
    order = []
    for j in cluster_rank:
        order.extend(np.nonzero(result.labels == j)[0].tolist())
    return np.asarray(order, dtype=np.int64)
