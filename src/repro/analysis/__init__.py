"""Analysis tools: clustering (Fig. 2), classification, metrics, rendering."""

from .classify import (
    classic_catalog,
    classify,
    cooperation_propensity,
    hamming_distance,
    nearest_classic,
)
from .heatmap import COOPERATE_CHAR, DEFECT_CHAR, render_raster
from .invasion import InvasionResult, can_invade, invasion_fitness, uninvadable_by
from .kmeans import KMeansResult, cluster_order, lloyd_kmeans
from .metrics import (
    dominance_timeline,
    population_cooperation_rate,
    strategy_entropy,
    strategy_richness,
)
from .structured import (
    dominant_strategy_clusters,
    largest_cluster_fraction,
    neighborhood_cooperation,
)
from .tables import format_table

__all__ = [
    "classic_catalog",
    "classify",
    "cooperation_propensity",
    "hamming_distance",
    "nearest_classic",
    "COOPERATE_CHAR",
    "DEFECT_CHAR",
    "render_raster",
    "InvasionResult",
    "can_invade",
    "invasion_fitness",
    "uninvadable_by",
    "KMeansResult",
    "cluster_order",
    "lloyd_kmeans",
    "dominance_timeline",
    "population_cooperation_rate",
    "strategy_entropy",
    "strategy_richness",
    "dominant_strategy_clusters",
    "largest_cluster_fraction",
    "neighborhood_cooperation",
    "format_table",
]
