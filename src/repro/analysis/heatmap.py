"""ASCII rendering of the population strategy raster (paper Figure 2).

Each row is one SSet's strategy, each column one game state; the paper
colours cooperation yellow and defection blue — we use ``.`` for C and
``#`` for D.  Rows can be permuted by a clustering order so dominant blocks
read as contiguous bands, exactly the presentation of Figure 2(b).
"""

from __future__ import annotations

import numpy as np

from ..core.states import MEMORY_ONE_GRAY_ORDER
from ..errors import ConfigurationError

__all__ = ["render_raster", "COOPERATE_CHAR", "DEFECT_CHAR"]

COOPERATE_CHAR = "."
DEFECT_CHAR = "#"


def render_raster(
    strategy_matrix: np.ndarray,
    row_order: np.ndarray | None = None,
    column_order: tuple[int, ...] | None = None,
    max_rows: int = 40,
    title: str | None = None,
) -> str:
    """Render a strategy raster as text.

    Parameters
    ----------
    strategy_matrix:
        (n_ssets, n_states) move matrix (0 = C, 1 = D).
    row_order:
        Optional permutation (e.g. from
        :func:`repro.analysis.kmeans.cluster_order`).
    column_order:
        Optional state display order; pass
        :data:`~repro.core.states.MEMORY_ONE_GRAY_ORDER` for the paper's
        memory-one column convention.
    max_rows:
        Rows are subsampled evenly beyond this limit (terminal-friendly).
    """
    matrix = np.asarray(strategy_matrix)
    if matrix.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if row_order is not None:
        matrix = matrix[np.asarray(row_order)]
    if column_order is not None:
        if sorted(column_order) != list(range(matrix.shape[1])):
            raise ConfigurationError(
                f"column_order must permute range({matrix.shape[1]})"
            )
        matrix = matrix[:, np.asarray(column_order)]
    n_rows = matrix.shape[0]
    if n_rows > max_rows:
        picks = np.linspace(0, n_rows - 1, max_rows).round().astype(int)
        matrix = matrix[picks]
        subtitle = f"({n_rows} SSets, showing every ~{n_rows // max_rows}th)"
    else:
        subtitle = f"({n_rows} SSets)"
    lines = []
    if title:
        lines.append(f"{title} {subtitle}")
    for row in matrix:
        lines.append(
            "".join(DEFECT_CHAR if bool(round(float(v))) else COOPERATE_CHAR for v in row)
        )
    return "\n".join(lines)


def paper_memory_one_order() -> tuple[int, ...]:
    """The paper's memory-one column order (Table V Gray code)."""
    return MEMORY_ONE_GRAY_ORDER
