"""Strategy classification against the classic named strategies.

Used by the validation experiment to report *which* strategy dominates the
evolved population (paper Fig. 2: 85 % WSLS) and by the examples to label
interesting mutants.
"""

from __future__ import annotations

import numpy as np

from ..core.states import num_states
from ..core.strategy import Strategy, all_c, all_d, grim, tft, wsls
from ..errors import StrategyError

__all__ = [
    "hamming_distance",
    "classify",
    "nearest_classic",
    "cooperation_propensity",
    "classic_catalog",
]


def classic_catalog(memory_steps: int) -> dict[str, Strategy]:
    """The named classics lifted to ``memory_steps``."""
    catalog = {
        "ALLC": all_c(memory_steps),
        "ALLD": all_d(memory_steps),
        "TFT": tft(memory_steps),
        "WSLS": wsls(memory_steps),
        "GRIM": grim(memory_steps),
    }
    if memory_steps >= 2:
        from ..core.strategy import tf2t

        catalog["TF2T"] = tf2t(memory_steps)
    return catalog


def hamming_distance(a: Strategy, b: Strategy) -> int:
    """Number of states where two pure strategies prescribe different moves."""
    if a.memory_steps != b.memory_steps:
        raise StrategyError("strategies must share memory_steps")
    if not (a.is_pure and b.is_pure):
        raise StrategyError("hamming distance is defined for pure strategies")
    return int(np.count_nonzero(a.table != b.table))


def classify(strategy: Strategy) -> str | None:
    """Exact classic name of ``strategy``, or None.

    A lifted classic (e.g. WSLS embedded in memory-three) classifies as its
    base name: behaviourally they are the same strategy.
    """
    if not strategy.is_pure:
        return None
    for name, classic in classic_catalog(strategy.memory_steps).items():
        if strategy == classic:
            return name
    return None


def nearest_classic(strategy: Strategy) -> tuple[str, int]:
    """Closest classic by Hamming distance (ties: catalog order)."""
    best_name, best_dist = "", num_states(strategy.memory_steps) + 1
    for name, classic in classic_catalog(strategy.memory_steps).items():
        d = hamming_distance(strategy, classic)
        if d < best_dist:
            best_name, best_dist = name, d
    return best_name, best_dist


def cooperation_propensity(strategy: Strategy) -> float:
    """Fraction of states in which the strategy cooperates.

    For mixed strategies this is the mean cooperation probability over
    states (a crude static indicator; use the Markov engine for behaviour
    against a specific opponent).
    """
    return float(1.0 - strategy.defect_probabilities().mean())
