"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import ConfigurationError

__all__ = ["format_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Align ``rows`` under ``headers`` with a separator rule."""
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in text_rows)) if text_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
