"""Structured-population metrics (neighborhood cooperation, clustering).

Graph-structured dynamics are spatial: cooperation survives (or dies) in
*clusters*, which global metrics like
:func:`~repro.analysis.metrics.population_cooperation_rate` average away.
These metrics resolve the population onto its interaction graph:

* :func:`neighborhood_cooperation` — per-SSet cooperation fraction over
  the games it actually plays (its neighborhood);
* :func:`dominant_strategy_clusters` — connected-component sizes of the
  subgraph induced by the SSets holding the dominant strategy;
* :func:`largest_cluster_fraction` — the classic spatial-game order
  parameter (size of the biggest dominant-strategy cluster / N).

All three accept either a bound :class:`~repro.structure.InteractionModel`
or a spec string (``"ring:k=4"``, ``"smallworld:k=4,p=0.1,seed=7"``, ...),
which they bind to the population size.  Graph structures are walked
through their flat CSR adjacency (``indptr``/``indices``), so the cluster
search is array slicing rather than per-node Python lists.
"""

from __future__ import annotations

import numpy as np

from ..core.cycle import exact_payoffs
from ..core.markov import expected_payoffs
from ..core.payoff import PAPER_PAYOFF, PayoffMatrix
from ..core.population import Population
from ..structure import GraphStructure, InteractionModel, build_structure

__all__ = [
    "neighborhood_cooperation",
    "dominant_strategy_clusters",
    "largest_cluster_fraction",
]


def _bind(
    structure: "InteractionModel | str", population: Population
) -> InteractionModel:
    return build_structure(structure, len(population))


def neighborhood_cooperation(
    population: Population,
    structure: "InteractionModel | str",
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
) -> np.ndarray:
    """Per-SSet *expected* cooperation fraction over its neighborhood games.

    Entry ``i`` is the mean cooperation rate (both players' moves) of the
    games SSet ``i`` plays against its neighbors: the exact cycle engine
    for pure noiseless pairs, the exact Markov expectation otherwise —
    pass the run's ``noise`` so the metric describes the same game the
    dynamics played.  For the well-mixed model the neighborhood is the
    whole population, so the mean of this vector matches the global
    cooperation rate up to pair weighting.
    """
    model = _bind(structure, population)
    coop_cache: dict[tuple[bytes, bytes], float] = {}
    out = np.empty(len(population), dtype=np.float64)
    for i in range(len(population)):
        me = population[i].strategy
        total = 0.0
        nbrs = model.neighbors(i)
        for j in nbrs:
            other = population[int(j)].strategy
            key = (me.key(), other.key())
            coop = coop_cache.get(key)
            if coop is None:
                if noise == 0.0 and me.is_pure and other.is_pure:
                    _, _, coop = exact_payoffs(me, other, rounds, payoff)
                else:
                    _, _, coop = expected_payoffs(
                        me, other, rounds, payoff, noise=noise
                    )
                coop_cache[key] = coop
                coop_cache[(key[1], key[0])] = coop
            total += coop
        out[i] = total / len(nbrs)
    return out


def dominant_strategy_clusters(
    population: Population, structure: "InteractionModel | str"
) -> list[int]:
    """Connected-component sizes (descending) of the dominant strategy.

    A cluster is a maximal set of SSets that all hold the population's
    dominant strategy and are connected through the interaction graph.
    A well-mixed population always forms one cluster (the graph is
    complete), so fragmentation is purely a structure effect.
    """
    model = _bind(structure, population)
    dominant, _ = population.dominant_share()
    key = dominant.key()
    member_mask = np.array(
        [population[i].strategy.key() == key for i in range(len(population))],
        dtype=bool,
    )
    if isinstance(model, GraphStructure):
        return _csr_cluster_sizes(model, member_mask)
    sizes: list[int] = []
    unvisited = set(np.flatnonzero(member_mask).tolist())
    while unvisited:
        frontier = [unvisited.pop()]
        size = 0
        while frontier:
            node = frontier.pop()
            size += 1
            for j in model.neighbors(node):
                j = int(j)
                if j in unvisited:
                    unvisited.remove(j)
                    frontier.append(j)
        sizes.append(size)
    return sorted(sizes, reverse=True)


def _csr_cluster_sizes(model: GraphStructure, member_mask: np.ndarray) -> list[int]:
    """Connected components of the member-induced subgraph, walked as a
    frontier sweep over the CSR arrays: each expansion step gathers every
    frontier node's neighbor slice at once instead of looping Python-side
    per edge."""
    indptr, indices = model.indptr, model.indices
    remaining = member_mask.copy()
    sizes: list[int] = []
    while True:
        seeds = np.flatnonzero(remaining)
        if seeds.size == 0:
            break
        seed = seeds[0]
        remaining[seed] = False
        frontier = np.array([seed], dtype=np.int64)
        size = 0
        while frontier.size:
            size += int(frontier.size)
            flat, _ = model.neighbor_segments(frontier)
            new = np.unique(flat[remaining[flat]]).astype(np.int64)
            remaining[new] = False
            frontier = new
        sizes.append(size)
    return sorted(sizes, reverse=True)


def largest_cluster_fraction(
    population: Population, structure: "InteractionModel | str"
) -> float:
    """Largest dominant-strategy cluster as a fraction of the population."""
    sizes = dominant_strategy_clusters(population, structure)
    return sizes[0] / len(population) if sizes else 0.0
