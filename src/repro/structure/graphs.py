"""Graph-structured interaction models on a flat CSR adjacency core.

Every model here derives from :class:`GraphStructure`, which canonically
owns the graph as **CSR arrays** — :attr:`indptr` / :attr:`indices`
(int32) plus the derived :attr:`degrees` — and implements the shared
dynamics on top of them:

* **fitness** — one game against each neighbor.  With a bound
  :class:`~repro.core.engine.FitnessEngine` this is the vectorised dense
  path: a payoff-matrix gather over a CSR slice per event
  (:meth:`fitness_of` / :meth:`pair_fitness`), or one
  :func:`numpy.add.reduceat` reduction over the whole flat adjacency for
  every node at once (:meth:`gather_fitness` — what the lane-batched
  ensemble driver and the analysis layer consume).  With the legacy
  :class:`~repro.core.payoff_cache.PayoffCache` the neighborhood is
  grouped by distinct strategy and evaluated through
  :meth:`~repro.core.payoff_cache.PayoffCache.payoffs_to_many`, so the
  per-event cost is one (usually cached / vectorised) evaluation per
  *distinct* neighboring strategy, not per edge;
* **PC partner selection** — the learner is drawn uniformly from the
  population, the teacher uniformly from the learner's neighborhood (death-
  birth-flavored pairwise comparison, the convention of the structured-
  population literature).  The two bounded draws plus the adoption uniform
  are exactly what :mod:`repro.ensemble.rawstream` decodes in bulk off the
  raw Philox stream for ensemble lanes.

Models:

* :class:`Complete` — all-to-all graph.  Same fitness values as
  :class:`~repro.structure.base.WellMixed` (useful as a cross-check) but
  selected through the neighbor path.
* :class:`RingLattice` — N SSets on a cycle, each tied to its ``k`` nearest
  (``k/2`` per side); ``ring:k=4``.
* :class:`Grid2D` — 2-D torus with von-Neumann neighborhoods, reusing the
  Blue Gene torus coordinate math (:class:`repro.machine.TorusTopology`);
  ``grid`` (balanced factorization) or ``grid:rows=8,cols=8``.
* :class:`RandomRegular` — random d-regular graph from the pairing model,
  deterministic given its own ``seed`` parameter (independent of the
  evolution seed, so the graph is part of the *configuration*);
  ``regular:d=4,seed=7``.
* :class:`SmallWorld` — Watts–Strogatz rewired ring: start from
  ``ring:k=``, rewire each edge's far endpoint with probability ``p``;
  ``smallworld:k=4,p=0.1,seed=7``.
* :class:`ScaleFree` — Barabási–Albert preferential attachment, ``m``
  edges per arriving node; ``scalefree:m=2,seed=7``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..machine.topology import TorusTopology, balanced_dims
from .base import (
    InteractionModel,
    ParamValue,
    _expect_params,
    _int_param,
    register_structure,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.engine import FitnessEngine
    from ..core.payoff_cache import PayoffCache
    from ..core.population import Population

__all__ = [
    "GraphStructure",
    "Complete",
    "RingLattice",
    "Grid2D",
    "RandomRegular",
    "SmallWorld",
    "ScaleFree",
]


class GraphStructure(InteractionModel):
    """An interaction model canonically backed by a flat CSR adjacency.

    Constructed from per-node adjacency lists (the natural generator
    output), validated, then flattened into :attr:`indptr` /
    :attr:`indices` int32 arrays — the single source of truth every
    consumer gathers from.  The per-node list view (:attr:`adjacency`,
    :meth:`neighbors`) is *derived*: zero-copy slices of :attr:`indices`.
    """

    def __init__(self, n_ssets: int, adjacency: list[np.ndarray]):
        super().__init__(n_ssets)
        if len(adjacency) != n_ssets:
            raise ConfigurationError(
                f"adjacency has {len(adjacency)} rows for {n_ssets} SSets"
            )
        rows = []
        for i, nbrs in enumerate(adjacency):
            if len(nbrs) == 0:
                raise ConfigurationError(
                    f"SSet {i} has no neighbors; every SSet needs at least "
                    "one interaction partner"
                )
            if i in nbrs:
                raise ConfigurationError(f"SSet {i} lists itself as a neighbor")
            if len(set(int(j) for j in nbrs)) != len(nbrs):
                raise ConfigurationError(
                    f"SSet {i} lists a neighbor more than once; interaction "
                    "graphs are simple (no multi-edges)"
                )
            row = np.asarray(sorted(int(j) for j in nbrs), dtype=np.int32)
            if row[0] < 0 or row[-1] >= n_ssets:
                raise ConfigurationError(
                    f"SSet {i} lists a neighbor outside 0..{n_ssets - 1}"
                )
            rows.append(row)
        # CSR flattening: indices holds every row back to back (each row
        # sorted), indptr the row boundaries, degrees the row lengths.
        degrees = np.array([len(row) for row in rows], dtype=np.int32)
        indptr = np.zeros(n_ssets + 1, dtype=np.int32)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.concatenate(rows).astype(np.int32, copy=False)
        # n_edges, edges(), and the cluster metrics all assume an
        # undirected graph, so asymmetric adjacency (possible from custom
        # register_structure factories) must fail loudly.  Symmetry check
        # on the flat arrays: the multiset of directed (i, j) edges must
        # equal the multiset of (j, i) edges.
        src = np.repeat(np.arange(n_ssets, dtype=np.int64), degrees)
        dst = indices.astype(np.int64)
        forward = np.sort(src * n_ssets + dst)
        backward = np.sort(dst * n_ssets + src)
        if not np.array_equal(forward, backward):
            bad = np.setdiff1d(forward, backward, assume_unique=False)[0]
            i, j = divmod(int(bad), n_ssets)
            raise ConfigurationError(
                f"adjacency is not symmetric: SSet {i} lists {j} as a "
                f"neighbor but not vice versa; interaction graphs are "
                "undirected"
            )
        # Instances are shared through the build_structure cache, and
        # neighbors() hands out views of these arrays: freeze them so an
        # in-place edit by a caller cannot corrupt every later run.
        for arr in (indptr, indices, degrees, src):
            arr.flags.writeable = False
        self._indptr = indptr
        self._indices = indices
        self._degrees = degrees
        #: Row id of each flat adjacency slot (``indices[e]`` is a neighbor
        #: of ``edge_rows[e]``) — the repeat pattern every all-node gather
        #: needs, built once.
        self._edge_rows = src

    # -- graph views ---------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers, shape ``(n_ssets + 1,)``, int32 (frozen)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR flat neighbor ids (each row sorted), int32 (frozen)."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Per-node neighbor counts, shape ``(n_ssets,)``, int32 (frozen)."""
        return self._degrees

    @property
    def adjacency(self) -> list[np.ndarray]:
        """Derived per-node list view: zero-copy CSR row slices."""
        indptr = self._indptr
        return [
            self._indices[indptr[i] : indptr[i + 1]]
            for i in range(self.n_ssets)
        ]

    def neighbors(self, sset_id: int) -> np.ndarray:
        self._check_id(sset_id)
        return self._indices[self._indptr[sset_id] : self._indptr[sset_id + 1]]

    def degree(self, sset_id: int) -> int:
        self._check_id(sset_id)
        return int(self._degrees[sset_id])

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self._indices.shape[0] // 2

    def edges(self) -> list[tuple[int, int]]:
        """All undirected edges as sorted ``(low, high)`` pairs."""
        src, dst = self._edge_rows, self._indices
        keep = src < dst
        return list(zip(src[keep].tolist(), dst[keep].tolist()))

    def neighbor_segments(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat CSR gather plan for a batch of focal ``nodes``.

        Returns ``(flat_neighbors, seg_ptr)`` with
        ``flat_neighbors[seg_ptr[i]:seg_ptr[i+1]]`` the neighbor ids of
        ``nodes[i]`` — the shape the batched fitness reductions
        (:meth:`gather_fitness`,
        :meth:`repro.ensemble.engine.EnsembleEngine.fitness_pc_graph`)
        consume.  Duplicate nodes are fine (each gets its own segment).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        deg = self._degrees[nodes].astype(np.int64)
        seg = np.zeros(nodes.shape[0] + 1, dtype=np.int64)
        np.cumsum(deg, out=seg[1:])
        starts = self._indptr[nodes].astype(np.int64)
        flat = np.repeat(starts - seg[:-1], deg) + np.arange(seg[-1])
        return self._indices[flat], seg

    # -- batched fitness ------------------------------------------------------

    def gather_fitness(
        self,
        sids: np.ndarray,
        paymat: np.ndarray,
        nodes: np.ndarray | None = None,
        include_self_play: bool = False,
    ) -> np.ndarray:
        """Batched graph fitness straight off the CSR adjacency.

        ``sids`` maps node -> interned strategy id (a population's sid
        array) and ``paymat`` is a dense payoff matrix over those sids
        (:class:`~repro.core.engine.FitnessEngine` /
        :class:`~repro.ensemble.engine.EnsembleEngine`); entry ``i`` of the
        result is ``paymat[sids[i], sids[neighbors(i)]].sum()`` — one
        fancy-indexed gather plus one :func:`numpy.add.reduceat` for all
        requested ``nodes`` (default: every node).  Sums accumulate in
        float64; integer-valued payoff matrices therefore produce values
        bit-identical to the per-node serial gathers regardless of
        summation order.
        """
        sids = np.asarray(sids)
        if nodes is None:
            focal = sids[self._edge_rows]
            vals = paymat[focal, sids[self._indices]]
            seg_starts = self._indptr[:-1].astype(np.int64)
            diag_nodes = np.arange(self.n_ssets)
        else:
            nodes = np.asarray(nodes, dtype=np.int64)
            flat, seg = self.neighbor_segments(nodes)
            deg = self._degrees[nodes].astype(np.int64)
            focal = np.repeat(sids[nodes], deg)
            vals = paymat[focal, sids[flat]]
            seg_starts = seg[:-1]
            diag_nodes = nodes
        out = np.add.reduceat(vals.astype(np.float64, copy=False), seg_starts)
        if include_self_play:
            diag = sids[diag_nodes]
            out += paymat[diag, diag].astype(np.float64, copy=False)
        return out

    # -- dynamics ------------------------------------------------------------

    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        learner = int(rng.integers(self.n_ssets))
        start = self._indptr[learner]
        offset = int(rng.integers(int(self._degrees[learner])))
        teacher = int(self._indices[start + offset])
        return teacher, learner

    def fitness_of(
        self,
        population: "Population",
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        """Sum of game payoffs against the neighborhood.

        With a bound :class:`~repro.core.engine.FitnessEngine` this is the
        vectorised dense path: one payoff-matrix gather over the CSR
        neighbor slice's interned strategy ids.  The legacy path reuses the
        shared histogram fitness kernel on a *local* histogram of the
        neighborhood, so a tight cluster of one strategy costs a single
        cache probe, exactly like the well-mixed global fast path.  The
        neighborhood never contains the focal SSet (no self-loops), so the
        histogram is summed without its self-play exclusion and the
        optional self game is added separately.
        """
        # Runtime imports: repro.structure is imported by repro.core.config,
        # so a module-level core import here would be circular.
        from ..core.engine import FitnessEngine
        from ..core.payoff_cache import StrategyHistogram

        self._check_id(sset_id)
        if isinstance(evaluator, FitnessEngine):
            if evaluator is not population.engine:
                raise SimulationError(
                    "fitness requested through a FitnessEngine the "
                    "population is not bound to (call bind_engine first)"
                )
            return evaluator.fitness_neighbors(
                population.sid_of(sset_id),
                population.sids[self.neighbors(sset_id)],
                include_self_play,
            )
        me = population[sset_id].strategy
        hist = StrategyHistogram.from_strategies(
            [population[int(j)].strategy for j in self.neighbors(sset_id)]
        )
        total = hist.fitness_of(me, evaluator, include_self_play=True)
        if include_self_play:
            total += evaluator.payoff_to(me, me)
        return total

    def pair_fitness(
        self,
        population: "Population",
        sset_a: int,
        sset_b: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> tuple[float, float]:
        """Both PC fitness values in one batched CSR gather when a
        deterministic (eagerly filled) engine is bound; per-node otherwise
        (the lazy expected regime must keep its legacy accumulation order).
        """
        from ..core.engine import FitnessEngine

        if (
            isinstance(evaluator, FitnessEngine)
            and evaluator is population.engine
            and evaluator.is_eager
        ):
            self._check_id(sset_a)
            self._check_id(sset_b)
            fit = evaluator.gather_fitness(
                self,
                population.sids,
                nodes=np.array([sset_a, sset_b], dtype=np.int64),
                include_self_play=include_self_play,
            )
            # np.float64 scalars, matching fitness_neighbors (the golden
            # event hashes repr() the recorded fitness values).
            return fit[0], fit[1]
        return super().pair_fitness(
            population, sset_a, sset_b, evaluator, include_self_play
        )


class Complete(GraphStructure):
    """All-to-all graph (every SSet neighbors every other)."""

    name: ClassVar[str] = "complete"

    def __init__(self, n_ssets: int):
        ids = np.arange(n_ssets, dtype=np.int64)
        super().__init__(n_ssets, [ids[ids != i] for i in range(n_ssets)])

    def spec(self) -> str:
        return self.name


class RingLattice(GraphStructure):
    """Cycle of N SSets, each tied to its ``k`` nearest (``k/2`` per side)."""

    name: ClassVar[str] = "ring"

    def __init__(self, n_ssets: int, k: int = 2):
        _check_ring_params(self.name, n_ssets, k)
        self.k = k
        super().__init__(n_ssets, _ring_adjacency(n_ssets, k))

    def spec(self) -> str:
        return f"{self.name}:k={self.k}"


def _check_ring_params(name: str, n_ssets: int, k: int) -> None:
    if k < 2 or k % 2 != 0:
        raise ConfigurationError(
            f"{name} lattice k must be a positive even integer, got {k}"
        )
    if k >= n_ssets:
        raise ConfigurationError(
            f"{name} lattice k={k} needs at least k+1={k + 1} SSets, "
            f"got {n_ssets}"
        )


def _ring_adjacency(n_ssets: int, k: int) -> list[np.ndarray]:
    half = k // 2
    return [
        np.array(
            sorted({(i + d) % n_ssets for d in range(-half, half + 1)} - {i}),
            dtype=np.int64,
        )
        for i in range(n_ssets)
    ]


class Grid2D(GraphStructure):
    """2-D torus grid with von-Neumann (4-)neighborhoods.

    The wrap-around adjacency is the Blue Gene torus coordinate math
    (:meth:`repro.machine.TorusTopology.neighbors`) on a 2-D torus; rows of
    size 2 degenerate to degree-3 nodes (the ±1 steps coincide), which the
    topology deduplicates.
    """

    name: ClassVar[str] = "grid"

    def __init__(self, n_ssets: int, rows: int | None = None, cols: int | None = None):
        if (rows is None) != (cols is None):
            raise ConfigurationError(
                "grid structure needs both rows and cols (or neither, for "
                "the balanced factorization)"
            )
        if rows is None:
            dims = balanced_dims(n_ssets, 2)
            rows, cols = int(dims[0]), int(dims[1])
        assert cols is not None
        if rows * cols != n_ssets:
            raise ConfigurationError(
                f"grid rows*cols = {rows}*{cols} = {rows * cols} "
                f"must equal n_ssets = {n_ssets}"
            )
        if min(rows, cols) < 2:
            raise ConfigurationError(
                f"grid needs both dimensions >= 2, got {rows}x{cols}; a 2-D "
                "torus requires n_ssets to factor as rows*cols with both "
                ">= 2 (impossible for prime n_ssets — use ring:k=... there)"
            )
        self.rows, self.cols = rows, cols
        torus = TorusTopology((rows, cols))
        adjacency = [
            np.array(torus.neighbors(i), dtype=np.int64)
            for i in range(n_ssets)
        ]
        super().__init__(n_ssets, adjacency)

    def spec(self) -> str:
        return f"{self.name}:rows={self.rows},cols={self.cols}"


class RandomRegular(GraphStructure):
    """Random d-regular graph (pairing/configuration model with rejection).

    The graph is a function of ``(n_ssets, d, seed)`` alone — the ``seed``
    is the *structure's* seed, independent of the evolution seed, so the
    same spec always rebuilds the same graph (checkpoint resume relies on
    this).
    """

    name: ClassVar[str] = "regular"

    _MAX_ATTEMPTS = 500

    def __init__(self, n_ssets: int, d: int = 4, seed: int = 0):
        if d < 1:
            raise ConfigurationError(f"regular graph degree must be >= 1, got {d}")
        if d >= n_ssets:
            raise ConfigurationError(
                f"regular graph degree d={d} needs at least d+1={d + 1} "
                f"SSets, got {n_ssets}"
            )
        if (d * n_ssets) % 2 != 0:
            raise ConfigurationError(
                f"d*n must be even for a d-regular graph, got d={d}, "
                f"n={n_ssets}"
            )
        _check_structure_seed(self.name, seed)
        self.d = d
        self.seed = seed
        rng = np.random.default_rng(seed)
        adjacency = self._generate(n_ssets, d, rng)
        super().__init__(n_ssets, adjacency)

    @classmethod
    def _generate(
        cls, n: int, d: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        stubs = np.repeat(np.arange(n, dtype=np.int64), d)
        for _ in range(cls._MAX_ATTEMPTS):
            rng.shuffle(stubs)
            a, b = stubs[0::2], stubs[1::2]
            if np.any(a == b):
                continue  # self-loop: reject the whole matching
            lo, hi = np.minimum(a, b), np.maximum(a, b)
            edges = set(zip(lo.tolist(), hi.tolist()))
            if len(edges) != len(a):
                continue  # multi-edge: reject
            return _adjacency_from_edges(n, edges)
        raise ConfigurationError(
            f"failed to generate a {d}-regular graph on {n} nodes after "
            f"{cls._MAX_ATTEMPTS} pairing attempts; try another seed or degree"
        )

    def spec(self) -> str:
        return f"{self.name}:d={self.d},seed={self.seed}"


class SmallWorld(GraphStructure):
    """Watts–Strogatz small-world graph (rewired ring lattice).

    Start from ``ring:k=`` and visit every lattice edge ``(i, i+j)`` (for
    ``j = 1..k/2``, node by node); with probability ``p`` its far endpoint
    is rewired to a uniform non-neighbor.  ``p=0`` is exactly the ring,
    ``p=1`` approaches a random graph, and the interesting small-world
    regime sits at small ``p`` (short paths, high clustering).  Each node
    keeps the ``k/2`` edges it *owns*, so every node retains degree >= 1
    and the graph stays simple.  Like :class:`RandomRegular`, the graph is
    a pure function of ``(n_ssets, k, p, seed)`` — the seed is part of the
    configuration, independent of the evolution seed.
    """

    name: ClassVar[str] = "smallworld"

    def __init__(self, n_ssets: int, k: int = 4, p: float = 0.1, seed: int = 0):
        _check_ring_params(self.name, n_ssets, k)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"smallworld rewiring probability p must lie in [0, 1], "
                f"got {p}"
            )
        _check_structure_seed(self.name, seed)
        self.k = k
        self.p = float(p)
        self.seed = seed
        rng = np.random.default_rng(seed)
        adjacency = self._generate(n_ssets, k, self.p, rng)
        super().__init__(n_ssets, adjacency)

    @staticmethod
    def _generate(
        n: int, k: int, p: float, rng: np.random.Generator
    ) -> list[np.ndarray]:
        neighbors: list[set[int]] = [set() for _ in range(n)]
        for i in range(n):
            for j in range(1, k // 2 + 1):
                neighbors[i].add((i + j) % n)
                neighbors[(i + j) % n].add(i)
        for j in range(1, k // 2 + 1):
            for i in range(n):
                old = (i + j) % n
                if rng.random() >= p:
                    continue
                if len(neighbors[i]) >= n - 1:
                    continue  # i already neighbors everyone: nowhere to rewire
                if old not in neighbors[i]:
                    continue  # this lattice edge was already rewired away
                new = int(rng.integers(n))
                while new == i or new in neighbors[i]:
                    new = int(rng.integers(n))
                neighbors[i].discard(old)
                neighbors[old].discard(i)
                neighbors[i].add(new)
                neighbors[new].add(i)
        return [np.array(sorted(ns), dtype=np.int64) for ns in neighbors]

    def spec(self) -> str:
        return f"{self.name}:k={self.k},p={self.p!r},seed={self.seed}"


class ScaleFree(GraphStructure):
    """Barabási–Albert scale-free graph (preferential attachment).

    Nodes arrive one at a time and connect ``m`` edges to existing nodes
    with probability proportional to their current degree (sampling from
    the repeated-endpoints list, duplicates rejected) — the classic
    heavy-tailed degree distribution, hubs and leaves in one population.
    The first ``m + 1`` nodes form a seed clique so every attachment
    target has positive degree.  Pure function of ``(n_ssets, m, seed)``.
    """

    name: ClassVar[str] = "scalefree"

    def __init__(self, n_ssets: int, m: int = 2, seed: int = 0):
        if m < 1:
            raise ConfigurationError(
                f"scalefree attachment count m must be >= 1, got {m}"
            )
        if m + 1 >= n_ssets:
            raise ConfigurationError(
                f"scalefree m={m} needs at least m+2={m + 2} SSets "
                f"(an {m + 1}-clique seed plus one arrival), got {n_ssets}"
            )
        _check_structure_seed(self.name, seed)
        self.m = m
        self.seed = seed
        rng = np.random.default_rng(seed)
        adjacency = self._generate(n_ssets, m, rng)
        super().__init__(n_ssets, adjacency)

    @staticmethod
    def _generate(n: int, m: int, rng: np.random.Generator) -> list[np.ndarray]:
        edges: set[tuple[int, int]] = set()
        #: One entry per edge endpoint — drawing uniformly from this list
        #: is drawing a node with probability proportional to its degree.
        repeated: list[int] = []
        for a in range(m + 1):
            for b in range(a + 1, m + 1):
                edges.add((a, b))
                repeated.append(a)
                repeated.append(b)
        for new in range(m + 1, n):
            targets: set[int] = set()
            while len(targets) < m:
                targets.add(repeated[int(rng.integers(len(repeated)))])
            for t in sorted(targets):
                edges.add((t, new))
                repeated.append(t)
                repeated.append(new)
        return _adjacency_from_edges(n, edges)

    def spec(self) -> str:
        return f"{self.name}:m={self.m},seed={self.seed}"


def _check_structure_seed(name: str, seed: int) -> None:
    if seed < 0:
        raise ConfigurationError(
            f"{name} graph seed must be >= 0, got {seed}"
        )


def _adjacency_from_edges(
    n: int, edges: set[tuple[int, int]]
) -> list[np.ndarray]:
    neighbors: list[list[int]] = [[] for _ in range(n)]
    for x, y in edges:
        neighbors[x].append(y)
        neighbors[y].append(x)
    return [np.array(sorted(ns), dtype=np.int64) for ns in neighbors]


@register_structure(Complete.name, params="(no parameters — all-to-all)")
def _make_complete(params: dict[str, ParamValue], n_ssets: int) -> Complete:
    _expect_params(Complete.name, params, set())
    return Complete(n_ssets)


@register_structure(RingLattice.name, params="k= (even degree, default 2)")
def _make_ring(params: dict[str, ParamValue], n_ssets: int) -> RingLattice:
    _expect_params(RingLattice.name, params, {"k"})
    return RingLattice(n_ssets, k=_int_param(RingLattice.name, params, "k", 2))


@register_structure(
    Grid2D.name,
    params="rows=, cols= (2-D torus dims; omit both for the balanced split)",
)
def _make_grid(params: dict[str, ParamValue], n_ssets: int) -> Grid2D:
    _expect_params(Grid2D.name, params, {"rows", "cols"})
    rows = params.get("rows")
    cols = params.get("cols")
    return Grid2D(
        n_ssets,
        rows=None if rows is None else _int_param(Grid2D.name, params, "rows", 0),
        cols=None if cols is None else _int_param(Grid2D.name, params, "cols", 0),
    )


@register_structure(
    RandomRegular.name,
    params="d= (degree, default 4), seed= (graph seed, default 0)",
)
def _make_regular(params: dict[str, ParamValue], n_ssets: int) -> RandomRegular:
    _expect_params(RandomRegular.name, params, {"d", "seed"})
    return RandomRegular(
        n_ssets,
        d=_int_param(RandomRegular.name, params, "d", 4),
        seed=_int_param(RandomRegular.name, params, "seed", 0),
    )


@register_structure(
    SmallWorld.name,
    params="k= (ring degree, default 4), p= (rewiring prob, default 0.1), "
           "seed= (graph seed, default 0)",
)
def _make_smallworld(params: dict[str, ParamValue], n_ssets: int) -> SmallWorld:
    _expect_params(SmallWorld.name, params, {"k", "p", "seed"})
    p = params.get("p", 0.1)
    return SmallWorld(
        n_ssets,
        k=_int_param(SmallWorld.name, params, "k", 4),
        p=float(p),
        seed=_int_param(SmallWorld.name, params, "seed", 0),
    )


@register_structure(
    ScaleFree.name,
    params="m= (edges per arrival, default 2), seed= (graph seed, default 0)",
)
def _make_scalefree(params: dict[str, ParamValue], n_ssets: int) -> ScaleFree:
    _expect_params(ScaleFree.name, params, {"m", "seed"})
    return ScaleFree(
        n_ssets,
        m=_int_param(ScaleFree.name, params, "m", 2),
        seed=_int_param(ScaleFree.name, params, "seed", 0),
    )
