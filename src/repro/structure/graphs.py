"""Graph-structured interaction models.

Every model here derives from :class:`GraphStructure`, which owns the
adjacency lists and implements the shared dynamics:

* **fitness** — one game against each neighbor.  With a bound
  :class:`~repro.core.engine.FitnessEngine` this is the vectorised dense
  path, ``paymat[sid, sids[neighbors]].sum()`` — one fancy-indexed gather
  per event.  With the legacy :class:`~repro.core.payoff_cache.PayoffCache`
  the neighborhood is grouped by distinct strategy and evaluated through
  :meth:`~repro.core.payoff_cache.PayoffCache.payoffs_to_many`, so the
  per-event cost is one (usually cached / vectorised) evaluation per
  *distinct* neighboring strategy, not per edge;
* **PC partner selection** — the learner is drawn uniformly from the
  population, the teacher uniformly from the learner's neighborhood (death-
  birth-flavored pairwise comparison, the convention of the structured-
  population literature).

Models:

* :class:`Complete` — all-to-all graph.  Same fitness values as
  :class:`~repro.structure.base.WellMixed` (useful as a cross-check) but
  selected through the neighbor path.
* :class:`RingLattice` — N SSets on a cycle, each tied to its ``k`` nearest
  (``k/2`` per side); ``ring:k=4``.
* :class:`Grid2D` — 2-D torus with von-Neumann neighborhoods, reusing the
  Blue Gene torus coordinate math (:class:`repro.machine.TorusTopology`);
  ``grid`` (balanced factorization) or ``grid:rows=8,cols=8``.
* :class:`RandomRegular` — random d-regular graph from the pairing model,
  deterministic given its own ``seed`` parameter (independent of the
  evolution seed, so the graph is part of the *configuration*);
  ``regular:d=4,seed=7``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..machine.topology import TorusTopology, balanced_dims
from .base import InteractionModel, _expect_params, register_structure

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.engine import FitnessEngine
    from ..core.payoff_cache import PayoffCache
    from ..core.population import Population

__all__ = ["GraphStructure", "Complete", "RingLattice", "Grid2D", "RandomRegular"]


class GraphStructure(InteractionModel):
    """An interaction model backed by explicit adjacency lists."""

    def __init__(self, n_ssets: int, adjacency: list[np.ndarray]):
        super().__init__(n_ssets)
        if len(adjacency) != n_ssets:
            raise ConfigurationError(
                f"adjacency has {len(adjacency)} rows for {n_ssets} SSets"
            )
        for i, nbrs in enumerate(adjacency):
            if len(nbrs) == 0:
                raise ConfigurationError(
                    f"SSet {i} has no neighbors; every SSet needs at least "
                    "one interaction partner"
                )
            if i in nbrs:
                raise ConfigurationError(f"SSet {i} lists itself as a neighbor")
            if len(set(int(j) for j in nbrs)) != len(nbrs):
                raise ConfigurationError(
                    f"SSet {i} lists a neighbor more than once; interaction "
                    "graphs are simple (no multi-edges)"
                )
        self._adjacency = [
            np.asarray(sorted(int(j) for j in nbrs), dtype=np.int64)
            for nbrs in adjacency
        ]
        # Instances are shared through the build_structure cache, and
        # neighbors() hands these arrays out directly: freeze them so an
        # in-place edit by a caller cannot corrupt every later run.
        for arr in self._adjacency:
            arr.flags.writeable = False
        # n_edges, edges(), and the cluster metrics all assume an
        # undirected graph, so asymmetric adjacency (possible from custom
        # register_structure factories) must fail loudly.
        directed = {
            (i, int(j)) for i, nbrs in enumerate(self._adjacency) for j in nbrs
        }
        for i, j in directed:
            if (j, i) not in directed:
                raise ConfigurationError(
                    f"adjacency is not symmetric: SSet {i} lists {j} as a "
                    f"neighbor but not vice versa; interaction graphs are "
                    "undirected"
                )

    # -- graph views ---------------------------------------------------------

    def neighbors(self, sset_id: int) -> np.ndarray:
        self._check_id(sset_id)
        return self._adjacency[sset_id]

    def degree(self, sset_id: int) -> int:
        return len(self.neighbors(sset_id))

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adjacency) // 2

    def edges(self) -> list[tuple[int, int]]:
        """All undirected edges as sorted ``(low, high)`` pairs."""
        return [
            (i, int(j))
            for i, nbrs in enumerate(self._adjacency)
            for j in nbrs
            if i < j
        ]

    # -- dynamics ------------------------------------------------------------

    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        learner = int(rng.integers(self.n_ssets))
        nbrs = self._adjacency[learner]
        teacher = int(nbrs[int(rng.integers(len(nbrs)))])
        return teacher, learner

    def fitness_of(
        self,
        population: "Population",
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        """Sum of game payoffs against the neighborhood.

        With a bound :class:`~repro.core.engine.FitnessEngine` this is the
        vectorised dense path: one payoff-matrix gather over the neighbors'
        interned strategy ids.  The legacy path reuses the shared histogram
        fitness kernel on a *local* histogram of the neighborhood, so a
        tight cluster of one strategy costs a single cache probe, exactly
        like the well-mixed global fast path.  The neighborhood never
        contains the focal SSet (no self-loops), so the histogram is summed
        without its self-play exclusion and the optional self game is added
        separately.
        """
        # Runtime imports: repro.structure is imported by repro.core.config,
        # so a module-level core import here would be circular.
        from ..core.engine import FitnessEngine
        from ..core.payoff_cache import StrategyHistogram

        self._check_id(sset_id)
        if isinstance(evaluator, FitnessEngine):
            if evaluator is not population.engine:
                raise SimulationError(
                    "fitness requested through a FitnessEngine the "
                    "population is not bound to (call bind_engine first)"
                )
            return evaluator.fitness_neighbors(
                population.sid_of(sset_id),
                population.sids[self._adjacency[sset_id]],
                include_self_play,
            )
        me = population[sset_id].strategy
        hist = StrategyHistogram.from_strategies(
            [population[int(j)].strategy for j in self._adjacency[sset_id]]
        )
        total = hist.fitness_of(me, evaluator, include_self_play=True)
        if include_self_play:
            total += evaluator.payoff_to(me, me)
        return total


class Complete(GraphStructure):
    """All-to-all graph (every SSet neighbors every other)."""

    name: ClassVar[str] = "complete"

    def __init__(self, n_ssets: int):
        ids = np.arange(n_ssets, dtype=np.int64)
        super().__init__(n_ssets, [ids[ids != i] for i in range(n_ssets)])

    def spec(self) -> str:
        return self.name


class RingLattice(GraphStructure):
    """Cycle of N SSets, each tied to its ``k`` nearest (``k/2`` per side)."""

    name: ClassVar[str] = "ring"

    def __init__(self, n_ssets: int, k: int = 2):
        if k < 2 or k % 2 != 0:
            raise ConfigurationError(
                f"ring lattice k must be a positive even integer, got {k}"
            )
        if k >= n_ssets:
            raise ConfigurationError(
                f"ring lattice k={k} needs at least k+1={k + 1} SSets, "
                f"got {n_ssets}"
            )
        self.k = k
        half = k // 2
        adjacency = [
            np.array(
                sorted({(i + d) % n_ssets for d in range(-half, half + 1)} - {i}),
                dtype=np.int64,
            )
            for i in range(n_ssets)
        ]
        super().__init__(n_ssets, adjacency)

    def spec(self) -> str:
        return f"{self.name}:k={self.k}"


class Grid2D(GraphStructure):
    """2-D torus grid with von-Neumann (4-)neighborhoods.

    The wrap-around adjacency is the Blue Gene torus coordinate math
    (:meth:`repro.machine.TorusTopology.neighbors`) on a 2-D torus; rows of
    size 2 degenerate to degree-3 nodes (the ±1 steps coincide), which the
    topology deduplicates.
    """

    name: ClassVar[str] = "grid"

    def __init__(self, n_ssets: int, rows: int | None = None, cols: int | None = None):
        if (rows is None) != (cols is None):
            raise ConfigurationError(
                "grid structure needs both rows and cols (or neither, for "
                "the balanced factorization)"
            )
        if rows is None:
            dims = balanced_dims(n_ssets, 2)
            rows, cols = int(dims[0]), int(dims[1])
        assert cols is not None
        if rows * cols != n_ssets:
            raise ConfigurationError(
                f"grid rows*cols = {rows}*{cols} = {rows * cols} "
                f"must equal n_ssets = {n_ssets}"
            )
        if min(rows, cols) < 2:
            raise ConfigurationError(
                f"grid needs both dimensions >= 2, got {rows}x{cols}; a 2-D "
                "torus requires n_ssets to factor as rows*cols with both "
                ">= 2 (impossible for prime n_ssets — use ring:k=... there)"
            )
        self.rows, self.cols = rows, cols
        torus = TorusTopology((rows, cols))
        adjacency = [
            np.array(torus.neighbors(i), dtype=np.int64)
            for i in range(n_ssets)
        ]
        super().__init__(n_ssets, adjacency)

    def spec(self) -> str:
        return f"{self.name}:rows={self.rows},cols={self.cols}"


class RandomRegular(GraphStructure):
    """Random d-regular graph (pairing/configuration model with rejection).

    The graph is a function of ``(n_ssets, d, seed)`` alone — the ``seed``
    is the *structure's* seed, independent of the evolution seed, so the
    same spec always rebuilds the same graph (checkpoint resume relies on
    this).
    """

    name: ClassVar[str] = "regular"

    _MAX_ATTEMPTS = 500

    def __init__(self, n_ssets: int, d: int = 4, seed: int = 0):
        if d < 1:
            raise ConfigurationError(f"regular graph degree must be >= 1, got {d}")
        if d >= n_ssets:
            raise ConfigurationError(
                f"regular graph degree d={d} needs at least d+1={d + 1} "
                f"SSets, got {n_ssets}"
            )
        if (d * n_ssets) % 2 != 0:
            raise ConfigurationError(
                f"d*n must be even for a d-regular graph, got d={d}, "
                f"n={n_ssets}"
            )
        if seed < 0:
            raise ConfigurationError(
                f"regular graph seed must be >= 0, got {seed}"
            )
        self.d = d
        self.seed = seed
        rng = np.random.default_rng(seed)
        adjacency = self._generate(n_ssets, d, rng)
        super().__init__(n_ssets, adjacency)

    @classmethod
    def _generate(
        cls, n: int, d: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        stubs = np.repeat(np.arange(n, dtype=np.int64), d)
        for _ in range(cls._MAX_ATTEMPTS):
            rng.shuffle(stubs)
            a, b = stubs[0::2], stubs[1::2]
            if np.any(a == b):
                continue  # self-loop: reject the whole matching
            lo, hi = np.minimum(a, b), np.maximum(a, b)
            edges = set(zip(lo.tolist(), hi.tolist()))
            if len(edges) != len(a):
                continue  # multi-edge: reject
            neighbors: list[list[int]] = [[] for _ in range(n)]
            for x, y in edges:
                neighbors[x].append(y)
                neighbors[y].append(x)
            return [np.array(sorted(ns), dtype=np.int64) for ns in neighbors]
        raise ConfigurationError(
            f"failed to generate a {d}-regular graph on {n} nodes after "
            f"{cls._MAX_ATTEMPTS} pairing attempts; try another seed or degree"
        )

    def spec(self) -> str:
        return f"{self.name}:d={self.d},seed={self.seed}"


@register_structure(Complete.name)
def _make_complete(params: dict[str, int], n_ssets: int) -> Complete:
    _expect_params(Complete.name, params, set())
    return Complete(n_ssets)


@register_structure(RingLattice.name)
def _make_ring(params: dict[str, int], n_ssets: int) -> RingLattice:
    _expect_params(RingLattice.name, params, {"k"})
    return RingLattice(n_ssets, k=params.get("k", 2))


@register_structure(Grid2D.name)
def _make_grid(params: dict[str, int], n_ssets: int) -> Grid2D:
    _expect_params(Grid2D.name, params, {"rows", "cols"})
    return Grid2D(n_ssets, rows=params.get("rows"), cols=params.get("cols"))


@register_structure(RandomRegular.name)
def _make_regular(params: dict[str, int], n_ssets: int) -> RandomRegular:
    _expect_params(RandomRegular.name, params, {"d", "seed"})
    return RandomRegular(
        n_ssets, d=params.get("d", 4), seed=params.get("seed", 0)
    )
