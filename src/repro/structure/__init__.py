"""Population structures: who interacts with whom.

The :class:`InteractionModel` layer decouples the evolutionary dynamics
from the paper's well-mixed assumption.  ``structure`` specs are plain
strings carried by :class:`~repro.core.EvolutionConfig`:

=============================  ================================================
``well-mixed`` (default)       the paper's population — histogram fast path,
                               bit-identical to the pre-structure drivers
``complete``                   all-to-all graph (well-mixed fitness values,
                               neighbor-based teacher selection)
``ring:k=4``                   cycle, each SSet tied to its k nearest
``grid`` / ``grid:rows=8,cols=8``  2-D torus, von-Neumann neighborhoods
``regular:d=4,seed=7``         random d-regular graph (own seed)
=============================  ================================================

Build one with :func:`build_structure(spec, n_ssets)`; register new models
with :func:`register_structure`.
"""

from .base import (
    InteractionModel,
    WellMixed,
    available_structures,
    build_structure,
    is_well_mixed_spec,
    parse_structure_spec,
    register_structure,
    validate_structure,
)
from .graphs import Complete, GraphStructure, Grid2D, RandomRegular, RingLattice

__all__ = [
    "InteractionModel",
    "GraphStructure",
    "WellMixed",
    "Complete",
    "RingLattice",
    "Grid2D",
    "RandomRegular",
    "available_structures",
    "build_structure",
    "is_well_mixed_spec",
    "parse_structure_spec",
    "register_structure",
    "validate_structure",
]
