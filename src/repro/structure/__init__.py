"""Population structures: who interacts with whom.

The :class:`InteractionModel` layer decouples the evolutionary dynamics
from the paper's well-mixed assumption.  ``structure`` specs are plain
strings carried by :class:`~repro.core.EvolutionConfig`:

=============================  ================================================
``well-mixed`` (default)       the paper's population — histogram fast path,
                               bit-identical to the pre-structure drivers
``complete``                   all-to-all graph (well-mixed fitness values,
                               neighbor-based teacher selection)
``ring:k=4``                   cycle, each SSet tied to its k nearest
``grid`` / ``grid:rows=8,cols=8``  2-D torus, von-Neumann neighborhoods
``regular:d=4,seed=7``         random d-regular graph (own seed)
``smallworld:k=4,p=0.1,seed=7``  Watts–Strogatz rewired ring (own seed)
``scalefree:m=2,seed=7``       Barabási–Albert preferential attachment
=============================  ================================================

Every graph family canonically owns a flat CSR adjacency
(:attr:`GraphStructure.indptr` / :attr:`GraphStructure.indices`, int32) —
the representation the batched fitness path gathers from — with the
per-node adjacency lists kept as a derived view.

Build one with :func:`build_structure(spec, n_ssets)`; register new models
with :func:`register_structure`; list the families and their parameters
with :func:`structure_families` (CLI: ``repro structures``).
"""

from .base import (
    InteractionModel,
    WellMixed,
    available_structures,
    build_structure,
    is_well_mixed_spec,
    parse_structure_spec,
    register_structure,
    structure_families,
    validate_structure,
)
from .graphs import (
    Complete,
    GraphStructure,
    Grid2D,
    RandomRegular,
    RingLattice,
    ScaleFree,
    SmallWorld,
)

__all__ = [
    "InteractionModel",
    "GraphStructure",
    "WellMixed",
    "Complete",
    "RingLattice",
    "Grid2D",
    "RandomRegular",
    "SmallWorld",
    "ScaleFree",
    "available_structures",
    "build_structure",
    "is_well_mixed_spec",
    "parse_structure_spec",
    "register_structure",
    "structure_families",
    "validate_structure",
]
