"""The :class:`InteractionModel` abstraction — *who plays whom*.

The paper's population is well-mixed: every SSet plays every strategy in
the population, and pairwise-comparison learning draws teacher and learner
uniformly.  Structured populations (Sun, Su & Wang 2025; Stewart & Plotkin
2014) replace both with a graph: an SSet's fitness sums its games against
its *neighbors*, and a learner compares itself against a random neighbor.

An :class:`InteractionModel` is bound to a population size and answers
three questions:

* ``fitness_of(population, sset_id, evaluator, ...)`` — an SSet's fitness
  under this interaction pattern.  ``evaluator`` is either the legacy
  :class:`~repro.core.payoff_cache.PayoffCache` (games edge-batched so
  distinct-strategy pairs are evaluated once) or a bound
  :class:`~repro.core.engine.FitnessEngine`, in which case fitness is a
  dense payoff-matrix gather over interned strategy ids (the vectorised
  graph fitness path);
* ``select_pair(rng, n_ssets)`` — which (teacher, learner) pair a PC
  learning event compares;
* ``neighbors(sset_id)`` — the interaction neighborhood (used by the
  structured analysis metrics).

:class:`WellMixed` preserves the paper's exact semantics **and** its exact
RNG draw order, so configurations with ``structure="well-mixed"`` (the
default) follow bit-identical trajectories to the pre-structure drivers —
pinned by the test suite.

Structure *specs* are plain strings (``"well-mixed"``, ``"ring:k=4"``,
``"grid:rows=8,cols=8"``, ``"regular:d=4,seed=7"``) so they travel through
:class:`~repro.core.EvolutionConfig`, checkpoints, and the CLI unchanged;
:func:`build_structure` turns a spec plus the population size into a bound
model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.engine import FitnessEngine
    from ..core.payoff_cache import PayoffCache
    from ..core.population import Population

__all__ = [
    "InteractionModel",
    "WellMixed",
    "parse_structure_spec",
    "build_structure",
    "validate_structure",
    "is_well_mixed_spec",
    "available_structures",
    "register_structure",
]


class InteractionModel(ABC):
    """One interaction pattern, bound to a population of ``n_ssets`` SSets."""

    #: Registry key — the part of the spec before the ``:``.
    name: ClassVar[str]

    def __init__(self, n_ssets: int):
        if n_ssets < 2:
            raise ConfigurationError(
                f"interaction models need at least 2 SSets, got {n_ssets}"
            )
        self.n_ssets = n_ssets

    # -- identity -----------------------------------------------------------

    @property
    def is_well_mixed(self) -> bool:
        """Whether this model is the paper's well-mixed fast path."""
        return False

    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string; ``build_structure(m.spec(), n)`` rebuilds
        an equivalent model (checkpoints persist this)."""

    # -- dynamics ------------------------------------------------------------

    @abstractmethod
    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        """Draw the ``(teacher, learner)`` pair of one PC learning event
        over this model's own ``n_ssets``."""

    @abstractmethod
    def fitness_of(
        self,
        population: "Population",
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        """Fitness of one SSet under this interaction pattern."""

    @abstractmethod
    def neighbors(self, sset_id: int) -> np.ndarray:
        """Sorted ids of the SSets that ``sset_id`` interacts with."""

    # -- helpers -------------------------------------------------------------

    def _check_id(self, sset_id: int) -> None:
        if not 0 <= sset_id < self.n_ssets:
            raise ConfigurationError(
                f"sset_id {sset_id} out of range for {self.n_ssets} SSets"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(spec={self.spec()!r}, n={self.n_ssets})"


class WellMixed(InteractionModel):
    """The paper's population: every SSet plays every strategy.

    Fitness delegates to the histogram fast path
    (:meth:`repro.core.population.Population.fitness_of`) and
    :meth:`select_pair` reproduces the Nature Agent's historical draw order
    (teacher first, then learner with rejection), so well-mixed runs are
    bit-identical to the pre-structure drivers.
    """

    name: ClassVar[str] = "well-mixed"

    @property
    def is_well_mixed(self) -> bool:
        return True

    def spec(self) -> str:
        return self.name

    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        # This draw order (teacher first, then learner with rejection) is
        # the pinned pre-structure RNG consumption; NatureAgent delegates
        # here so the contract lives in exactly one place.
        n_ssets = self.n_ssets
        teacher = int(rng.integers(n_ssets))
        learner = int(rng.integers(n_ssets))
        while learner == teacher:
            learner = int(rng.integers(n_ssets))
        return teacher, learner

    def fitness_of(
        self,
        population: "Population",
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        # Population.fitness_of dispatches on the evaluator type: dense
        # counts @ paymat[sid] for a bound FitnessEngine, histogram fitness
        # for the legacy PayoffCache.
        return population.fitness_of(sset_id, evaluator, include_self_play)

    def neighbors(self, sset_id: int) -> np.ndarray:
        """Everyone else (the whole population is the neighborhood)."""
        self._check_id(sset_id)
        ids = np.arange(self.n_ssets, dtype=np.int64)
        return ids[ids != sset_id]


# -- spec registry -------------------------------------------------------------

#: name -> factory(params, n_ssets) building a bound model.
_REGISTRY: dict[str, Callable[[dict[str, int], int], InteractionModel]] = {}


def register_structure(
    name: str,
) -> Callable[
    [Callable[[dict[str, int], int], InteractionModel]],
    Callable[[dict[str, int], int], InteractionModel],
]:
    """Register a structure factory under ``name`` (decorator)."""

    def wrap(factory: Callable[[dict[str, int], int], InteractionModel]):
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate structure name {name!r}")
        _REGISTRY[name] = factory
        return factory

    return wrap


def available_structures() -> list[str]:
    """Names of all registered structures, sorted."""
    return sorted(_REGISTRY)


def parse_structure_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Split ``"name:k1=v1,k2=v2"`` into ``(name, {k: int})``.

    The name is validated against the registry; parameter validation is the
    factory's job (it knows the population size).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigurationError(f"structure spec must be a non-empty string, got {spec!r}")
    head, _, tail = spec.strip().partition(":")
    name = head.strip()
    if name not in _REGISTRY:
        known = ", ".join(available_structures())
        raise ConfigurationError(
            f"unknown structure {name!r}; registered: {known}"
        )
    params: dict[str, int] = {}
    if tail.strip():
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ConfigurationError(
                    f"malformed structure parameter {item!r} in {spec!r} "
                    "(expected key=value)"
                )
            if key in params:
                raise ConfigurationError(
                    f"duplicate structure parameter {key!r} in {spec!r}"
                )
            try:
                params[key] = int(value.strip())
            except ValueError:
                raise ConfigurationError(
                    f"structure parameter {key!r} in {spec!r} must be an "
                    f"integer, got {value.strip()!r}"
                ) from None
    return name, params


@lru_cache(maxsize=128)
def _build_from_spec(spec: str, n_ssets: int) -> InteractionModel:
    """Bound-model cache: configs, drivers, checkpoints and the CLI all
    rebuild the same (spec, n) repeatedly — graph generation (notably the
    random-regular pairing model) should run once per distinct binding.
    Models are immutable after construction, so sharing instances is safe.
    """
    name, params = parse_structure_spec(spec)
    return _REGISTRY[name](params, n_ssets)


def build_structure(spec: "str | InteractionModel", n_ssets: int) -> InteractionModel:
    """Build the bound :class:`InteractionModel` for a spec string.

    A ready-made model passes through unchanged (after a size check), so
    callers can hand-construct exotic graphs and still use every driver.
    String specs are cached per ``(spec, n_ssets)`` binding.
    """
    if isinstance(spec, InteractionModel):
        if spec.n_ssets != n_ssets:
            raise ConfigurationError(
                f"structure is bound to {spec.n_ssets} SSets, "
                f"population has {n_ssets}"
            )
        return spec
    return _build_from_spec(spec, n_ssets)


def validate_structure(spec: str, n_ssets: int) -> None:
    """Raise :class:`ConfigurationError` when ``spec`` cannot bind to a
    population of ``n_ssets`` (used by ``EvolutionConfig.__post_init__``)."""
    build_structure(spec, n_ssets)


def is_well_mixed_spec(spec: str) -> bool:
    """Whether ``spec`` names the well-mixed fast path (no graph)."""
    name, _ = parse_structure_spec(spec)
    return name == WellMixed.name


def _expect_params(
    name: str, params: dict[str, int], allowed: set[str]
) -> None:
    unknown = set(params) - allowed
    if unknown:
        raise ConfigurationError(
            f"structure {name!r} does not accept parameters "
            f"{sorted(unknown)}; allowed: {sorted(allowed)}"
        )


@register_structure(WellMixed.name)
def _make_well_mixed(params: dict[str, int], n_ssets: int) -> WellMixed:
    _expect_params(WellMixed.name, params, set())
    return WellMixed(n_ssets)
