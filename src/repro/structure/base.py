"""The :class:`InteractionModel` abstraction — *who plays whom*.

The paper's population is well-mixed: every SSet plays every strategy in
the population, and pairwise-comparison learning draws teacher and learner
uniformly.  Structured populations (Sun, Su & Wang 2025; Stewart & Plotkin
2014) replace both with a graph: an SSet's fitness sums its games against
its *neighbors*, and a learner compares itself against a random neighbor.

An :class:`InteractionModel` is bound to a population size and answers
three questions:

* ``fitness_of(population, sset_id, evaluator, ...)`` — an SSet's fitness
  under this interaction pattern.  ``evaluator`` is either the legacy
  :class:`~repro.core.payoff_cache.PayoffCache` (games edge-batched so
  distinct-strategy pairs are evaluated once) or a bound
  :class:`~repro.core.engine.FitnessEngine`, in which case fitness is a
  dense payoff-matrix gather over interned strategy ids (the vectorised
  graph fitness path);
* ``select_pair(rng, n_ssets)`` — which (teacher, learner) pair a PC
  learning event compares;
* ``neighbors(sset_id)`` — the interaction neighborhood (used by the
  structured analysis metrics).

:class:`WellMixed` preserves the paper's exact semantics **and** its exact
RNG draw order, so configurations with ``structure="well-mixed"`` (the
default) follow bit-identical trajectories to the pre-structure drivers —
pinned by the test suite.

Structure *specs* are plain strings (``"well-mixed"``, ``"ring:k=4"``,
``"grid:rows=8,cols=8"``, ``"regular:d=4,seed=7"``,
``"smallworld:k=4,p=0.1,seed=7"``, ``"scalefree:m=2,seed=7"``) so they
travel through :class:`~repro.core.EvolutionConfig`, checkpoints, and the
CLI unchanged; :func:`build_structure` turns a spec plus the population
size into a bound model.  Parameters are integers or floats (the
small-world rewiring probability); unknown parameter keys are rejected
with a suggestion, never silently ignored.
"""

from __future__ import annotations

import difflib
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.engine import FitnessEngine
    from ..core.payoff_cache import PayoffCache
    from ..core.population import Population

__all__ = [
    "InteractionModel",
    "WellMixed",
    "parse_structure_spec",
    "build_structure",
    "validate_structure",
    "is_well_mixed_spec",
    "available_structures",
    "structure_families",
    "register_structure",
]


class InteractionModel(ABC):
    """One interaction pattern, bound to a population of ``n_ssets`` SSets."""

    #: Registry key — the part of the spec before the ``:``.
    name: ClassVar[str]

    def __init__(self, n_ssets: int):
        if n_ssets < 2:
            raise ConfigurationError(
                f"interaction models need at least 2 SSets, got {n_ssets}"
            )
        self.n_ssets = n_ssets

    # -- identity -----------------------------------------------------------

    @property
    def is_well_mixed(self) -> bool:
        """Whether this model is the paper's well-mixed fast path."""
        return False

    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string; ``build_structure(m.spec(), n)`` rebuilds
        an equivalent model (checkpoints persist this)."""

    # -- dynamics ------------------------------------------------------------

    @abstractmethod
    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        """Draw the ``(teacher, learner)`` pair of one PC learning event
        over this model's own ``n_ssets``."""

    @abstractmethod
    def fitness_of(
        self,
        population: "Population",
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        """Fitness of one SSet under this interaction pattern."""

    @abstractmethod
    def neighbors(self, sset_id: int) -> np.ndarray:
        """Sorted ids of the SSets that ``sset_id`` interacts with."""

    def pair_fitness(
        self,
        population: "Population",
        sset_a: int,
        sset_b: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> tuple[float, float]:
        """Fitness of two SSets (one PC event's teacher and learner).

        The base implementation is two :meth:`fitness_of` calls;
        :class:`~repro.structure.graphs.GraphStructure` overrides it with
        one batched CSR payoff-matrix gather when a deterministic
        :class:`~repro.core.engine.FitnessEngine` is bound — same values
        (integer payoffs sum exactly in float64 in any order), fewer
        Python-level loops.

        An evaluator exposing ``pc_pair_fitness`` (the batched
        :class:`~repro.core.engine.SampledFitnessEngine`) takes over the
        whole event instead: it collects both sides' sampled games into
        one plan and plays them as a single vectorised kernel call.  The
        hook is duck-typed so this module never imports the engine (the
        config module sits between them on the import graph).
        """
        batched = getattr(evaluator, "pc_pair_fitness", None)
        if batched is not None:
            return batched(
                population, self, sset_a, sset_b, include_self_play
            )
        return (
            self.fitness_of(population, sset_a, evaluator, include_self_play),
            self.fitness_of(population, sset_b, evaluator, include_self_play),
        )

    # -- helpers -------------------------------------------------------------

    def _check_id(self, sset_id: int) -> None:
        if not 0 <= sset_id < self.n_ssets:
            raise ConfigurationError(
                f"sset_id {sset_id} out of range for {self.n_ssets} SSets"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(spec={self.spec()!r}, n={self.n_ssets})"


class WellMixed(InteractionModel):
    """The paper's population: every SSet plays every strategy.

    Fitness delegates to the histogram fast path
    (:meth:`repro.core.population.Population.fitness_of`) and
    :meth:`select_pair` reproduces the Nature Agent's historical draw order
    (teacher first, then learner with rejection), so well-mixed runs are
    bit-identical to the pre-structure drivers.
    """

    name: ClassVar[str] = "well-mixed"

    @property
    def is_well_mixed(self) -> bool:
        return True

    def spec(self) -> str:
        return self.name

    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        # This draw order (teacher first, then learner with rejection) is
        # the pinned pre-structure RNG consumption; NatureAgent delegates
        # here so the contract lives in exactly one place.
        n_ssets = self.n_ssets
        teacher = int(rng.integers(n_ssets))
        learner = int(rng.integers(n_ssets))
        while learner == teacher:
            learner = int(rng.integers(n_ssets))
        return teacher, learner

    def fitness_of(
        self,
        population: "Population",
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        # Population.fitness_of dispatches on the evaluator type: dense
        # counts @ paymat[sid] for a bound FitnessEngine, histogram fitness
        # for the legacy PayoffCache.
        return population.fitness_of(sset_id, evaluator, include_self_play)

    def neighbors(self, sset_id: int) -> np.ndarray:
        """Everyone else (the whole population is the neighborhood)."""
        self._check_id(sset_id)
        ids = np.arange(self.n_ssets, dtype=np.int64)
        return ids[ids != sset_id]


# -- spec registry -------------------------------------------------------------

#: Spec parameter values: integers, or floats for probability-like knobs
#: (the small-world rewiring probability).
ParamValue = int | float

#: name -> (factory(params, n_ssets), human-readable parameter summary).
_REGISTRY: dict[
    str, tuple[Callable[[dict[str, ParamValue], int], InteractionModel], str]
] = {}


def register_structure(
    name: str,
    params: str = "",
) -> Callable[
    [Callable[[dict[str, ParamValue], int], InteractionModel]],
    Callable[[dict[str, ParamValue], int], InteractionModel],
]:
    """Register a structure factory under ``name`` (decorator).

    ``params`` is a one-line human summary of the spec parameters the
    family accepts (shown by the ``repro structures`` CLI command).
    """

    def wrap(factory: Callable[[dict[str, ParamValue], int], InteractionModel]):
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate structure name {name!r}")
        _REGISTRY[name] = (factory, params)
        return factory

    return wrap


def available_structures() -> list[str]:
    """Names of all registered structures, sorted."""
    return sorted(_REGISTRY)


def structure_families() -> list[tuple[str, str]]:
    """``(name, parameter summary)`` for every registered family, sorted —
    the data behind the ``repro structures`` CLI listing."""
    return [(name, _REGISTRY[name][1]) for name in available_structures()]


def parse_structure_spec(spec: str) -> tuple[str, dict[str, ParamValue]]:
    """Split ``"name:k1=v1,k2=v2"`` into ``(name, {k: int | float})``.

    The name is validated against the registry; values parse as integers
    when possible, floats otherwise (``p=0.1``).  Parameter-*key*
    validation is the factory's job (it knows which keys it accepts and
    the population size) — see :func:`_expect_params`, which rejects
    unknown keys with a suggestion instead of silently ignoring them.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigurationError(f"structure spec must be a non-empty string, got {spec!r}")
    head, _, tail = spec.strip().partition(":")
    name = head.strip()
    if name not in _REGISTRY:
        known = ", ".join(available_structures())
        close = difflib.get_close_matches(name, available_structures(), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown structure {name!r}{hint}; registered: {known}"
        )
    params: dict[str, ParamValue] = {}
    if tail.strip():
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ConfigurationError(
                    f"malformed structure parameter {item!r} in {spec!r} "
                    "(expected key=value)"
                )
            if key in params:
                raise ConfigurationError(
                    f"duplicate structure parameter {key!r} in {spec!r}"
                )
            text = value.strip()
            try:
                params[key] = int(text)
            except ValueError:
                try:
                    params[key] = float(text)
                except ValueError:
                    raise ConfigurationError(
                        f"structure parameter {key!r} in {spec!r} must be a "
                        f"number, got {text!r}"
                    ) from None
    return name, params


@lru_cache(maxsize=128)
def _build_from_spec(spec: str, n_ssets: int) -> InteractionModel:
    """Bound-model cache: configs, drivers, checkpoints and the CLI all
    rebuild the same (spec, n) repeatedly — graph generation (notably the
    random-regular pairing model) should run once per distinct binding.
    Models are immutable after construction, so sharing instances is safe.
    """
    name, params = parse_structure_spec(spec)
    return _REGISTRY[name][0](params, n_ssets)


def build_structure(spec: "str | InteractionModel", n_ssets: int) -> InteractionModel:
    """Build the bound :class:`InteractionModel` for a spec string.

    A ready-made model passes through unchanged (after a size check), so
    callers can hand-construct exotic graphs and still use every driver.
    String specs are cached per ``(spec, n_ssets)`` binding.
    """
    if isinstance(spec, InteractionModel):
        if spec.n_ssets != n_ssets:
            raise ConfigurationError(
                f"structure is bound to {spec.n_ssets} SSets, "
                f"population has {n_ssets}"
            )
        return spec
    return _build_from_spec(spec, n_ssets)


def validate_structure(spec: str, n_ssets: int) -> None:
    """Raise :class:`ConfigurationError` when ``spec`` cannot bind to a
    population of ``n_ssets`` (used by ``EvolutionConfig.__post_init__``)."""
    build_structure(spec, n_ssets)


def is_well_mixed_spec(spec: str) -> bool:
    """Whether ``spec`` names the well-mixed fast path (no graph)."""
    name, _ = parse_structure_spec(spec)
    return name == WellMixed.name


def _expect_params(
    name: str, params: dict[str, ParamValue], allowed: set[str]
) -> None:
    """Reject parameter keys the family doesn't accept, with a
    nearest-match suggestion — a typo (``ring:K=4``) must fail loudly, not
    silently run the default graph."""
    unknown = set(params) - allowed
    if not unknown:
        return
    hints = []
    lowered = {a.lower(): a for a in allowed}
    for key in sorted(unknown):
        close = difflib.get_close_matches(key.lower(), sorted(lowered), n=1)
        if close:
            hints.append(f"{key!r} (did you mean {lowered[close[0]]!r}?)")
        else:
            hints.append(repr(key))
    allowed_text = (
        f"allowed: {sorted(allowed)}" if allowed else "it takes no parameters"
    )
    raise ConfigurationError(
        f"structure {name!r} does not accept parameter(s) "
        f"{', '.join(hints)}; {allowed_text}"
    )


def _int_param(name: str, params: dict[str, ParamValue], key: str, default: int) -> int:
    """Fetch an integer parameter (floats with integral values pass)."""
    value = params.get(key, default)
    if isinstance(value, float):
        if not value.is_integer():
            raise ConfigurationError(
                f"structure {name!r} parameter {key!r} must be an integer, "
                f"got {value!r}"
            )
        value = int(value)
    return value


@register_structure(WellMixed.name, params="(no parameters — the paper's population)")
def _make_well_mixed(params: dict[str, ParamValue], n_ssets: int) -> WellMixed:
    _expect_params(WellMixed.name, params, set())
    return WellMixed(n_ssets)
