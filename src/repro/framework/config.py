"""Configuration of a parallel (simulated Blue Gene) run."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..core.config import EvolutionConfig
from ..errors import ConfigurationError
from ..machine.bluegene import BLUEGENE_Q, MachineSpec
from .optimizations import OptimizationLevel

__all__ = ["ParallelConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """How an :class:`~repro.core.EvolutionConfig` maps onto a machine.

    Parameters
    ----------
    machine:
        Machine model (constants for network + kernel costs).
    n_ranks:
        Total MPI ranks, *including* the Nature Agent on rank 0
        (paper: "one processor is assigned as the Nature Agent and all
        other processors are assigned to SSets").
    ranks_per_node:
        Process placement (defaults to the machine's paper setup).
    threads_per_rank:
        OpenMP threads per rank (the hybrid model; paper: 2 on BG/Q).
    split_ssets:
        When SSets are fewer than worker ranks: ``False`` leaves ranks idle
        (whole-SSet assignment, the Fig. 4 / Table VI regime); ``True``
        splits an SSet's opponent games across a rank group with a partial-
        fitness reduction (the Fig. 6b regime).
    optimization:
        Code optimisation level (Figure 3).
    opponents_per_sset:
        Number of opponent strategies each SSet plays per generation;
        ``None`` means all SSets (the paper's default reading).  Weak
        scaling holds this fixed (DESIGN.md section 6).
    executable:
        ``True`` runs the real science through the DES (small scale);
        ``False`` runs cost-only programs (timing studies).
    """

    machine: MachineSpec = field(default_factory=lambda: BLUEGENE_Q)
    n_ranks: int = 8
    ranks_per_node: int | None = None
    threads_per_rank: int = 1
    split_ssets: bool = False
    optimization: OptimizationLevel = OptimizationLevel.INTRINSICS
    opponents_per_sset: int | None = None
    executable: bool = True

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ConfigurationError(
                "need at least 2 ranks (Nature Agent + 1 worker), got "
                f"{self.n_ranks}"
            )
        if self.threads_per_rank < 1:
            raise ConfigurationError(
                f"threads_per_rank must be >= 1, got {self.threads_per_rank}"
            )
        if self.ranks_per_node is not None and self.ranks_per_node < 1:
            raise ConfigurationError(
                f"ranks_per_node must be >= 1, got {self.ranks_per_node}"
            )
        if self.opponents_per_sset is not None and self.opponents_per_sset < 1:
            raise ConfigurationError(
                "opponents_per_sset must be >= 1 or None, got "
                f"{self.opponents_per_sset}"
            )

    @property
    def n_workers(self) -> int:
        """Worker ranks (everything but the Nature Agent)."""
        return self.n_ranks - 1

    def effective_opponents(self, evolution: EvolutionConfig) -> int:
        """Opponent games per SSet per generation."""
        if self.opponents_per_sset is None:
            return evolution.n_ssets
        return min(self.opponents_per_sset, evolution.n_ssets)

    def with_updates(self, **changes: Any) -> "ParallelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
