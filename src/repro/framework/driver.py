"""Run the paper's parallel algorithm on the simulated machine.

:func:`run_parallel_simulation` builds the decomposition, network model,
Nature/worker programs, and executes them in the DES, returning both the
science (executable mode) and the timing report that the scaling
experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import EvolutionConfig
from ..core.evolution import EventRecord
from ..core.nature import NatureAgent
from ..core.payoff_cache import PayoffCache
from ..core.population import Population
from ..core.strategy import Strategy
from ..errors import ConfigurationError
from ..machine.bluegene import network_for
from ..mpisim.simulator import SimulationReport, Simulator
from ..rng import SeedSequenceTree
from .config import ParallelConfig
from .costs import CostModel
from .decomposition import Decomposition
from .programs import nature_program, worker_program

__all__ = ["ParallelResult", "run_parallel_simulation", "MAX_DES_RANKS"]

#: Guard rail: DES runs beyond this rank count take minutes; the analytic
#: model (:mod:`repro.perfmodel`) is the intended tool at larger scales.
MAX_DES_RANKS: int = 4097


@dataclass
class ParallelResult:
    """Science + timing output of one simulated parallel run."""

    evolution: EvolutionConfig
    parallel: ParallelConfig
    decomposition: Decomposition
    report: SimulationReport
    #: Population-dynamics events, in order (executable mode: real science).
    events: list[EventRecord] = field(default_factory=list)
    #: Final strategy assignment (executable mode; from the Nature Agent).
    final_strategies: list[Strategy] = field(default_factory=list)
    #: Final per-worker strategy views (executable mode; for convergence checks).
    worker_views: dict[int, list[Strategy]] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Virtual wallclock of the run."""
        return self.report.makespan

    @property
    def compute_seconds(self) -> float:
        """Aggregate game/bookkeeping computation (excludes exposed sync)."""
        by_label = self.report.compute_by_label()
        return sum(v for k, v in by_label.items() if k != "exposed-sync")

    @property
    def comm_seconds(self) -> float:
        """Aggregate communication: network waits plus exposed sync."""
        return self.report.total_comm + self.report.compute_by_label().get(
            "exposed-sync", 0.0
        )

    def final_population(self) -> Population:
        """Final population built from the Nature Agent's record."""
        if not self.final_strategies:
            raise ConfigurationError(
                "no final strategies: this was a cost-only run"
            )
        return Population.from_strategies(
            self.final_strategies, self.evolution.agents_per_sset
        )


def run_parallel_simulation(
    evolution: EvolutionConfig, parallel: ParallelConfig
) -> ParallelResult:
    """Execute the paper's algorithm on the simulated machine.

    Executable mode (default) carries real strategies and fitness, so the
    result's events match :func:`repro.core.evolution.run_serial` for the
    same seed (deterministic configurations).  Cost-only mode replays the
    identical message schedule with dummy fitness for timing studies.
    """
    if parallel.n_ranks > MAX_DES_RANKS:
        raise ConfigurationError(
            f"DES runs are limited to {MAX_DES_RANKS} ranks "
            f"(got {parallel.n_ranks}); use repro.perfmodel for larger scales"
        )
    if parallel.executable and evolution.is_stochastic:
        raise ConfigurationError(
            "executable DES runs support deterministic configurations only "
            "(pure strategies, no noise); use cost-only mode or the serial "
            "drivers for stochastic science"
        )
    if not evolution.is_well_mixed:
        # The decomposition broadcasts the global strategy histogram; a
        # graph-structured fitness would need neighborhood-aware sharding.
        raise ConfigurationError(
            "the parallel DES framework models the well-mixed population "
            f"only (got structure={evolution.canonical_structure()!r}); use "
            "the serial or event driver for structured populations"
        )

    decomposition = Decomposition(
        n_ssets=evolution.n_ssets,
        n_workers=parallel.n_workers,
        split_ssets=parallel.split_ssets,
    )
    costs = CostModel(spec=parallel.machine, evolution=evolution, parallel=parallel)
    tree = SeedSequenceTree(evolution.seed)
    nature = NatureAgent(evolution, tree)
    initial = Population.random(evolution, tree.generator("init")).strategies()

    events: list[EventRecord] = []
    worker_views: dict[int, list[Strategy]] = {}
    cache = (
        PayoffCache(rounds=evolution.rounds, payoff=evolution.payoff)
        if parallel.executable
        else None
    )

    # The Nature Agent keeps its own copy of the assignment so we can read
    # the final record after the run.
    nature_strategies = list(initial)
    programs = [
        nature_program(nature, nature_strategies, costs, decomposition, events)
    ]
    for worker in range(parallel.n_workers):
        programs.append(
            worker_program(worker, costs, decomposition, cache, worker_views)
        )

    network = network_for(
        parallel.machine, parallel.n_ranks, parallel.ranks_per_node
    )
    simulator = Simulator(parallel.n_ranks, network, trace_events=False)
    report = simulator.run(programs)

    return ParallelResult(
        evolution=evolution,
        parallel=parallel,
        decomposition=decomposition,
        report=report,
        events=events,
        final_strategies=nature_strategies if parallel.executable else [],
        worker_views=worker_views,
    )
