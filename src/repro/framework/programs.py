"""Rank programs: the paper's algorithm expressed as DES coroutines.

These generators mirror the pseudocode of paper Sections IV.D/IV.E and the
hybrid implementation of Section V:

* :func:`nature_program` (rank 0) — draws each generation's events from the
  shared :class:`~repro.core.nature.NatureAgent` streams, broadcasts the
  decisions over the collective network, receives the selected SSets'
  fitness via point-to-point messages, applies the Fermi rule, and
  broadcasts strategy updates.
* :func:`worker_program` (ranks 1..P-1) — plays the local SSets' games
  (charged through the shared :class:`~repro.framework.costs.CostModel`),
  returns fitness when its SSet is selected (non-blocking at the
  NONBLOCKING+ optimisation levels), and applies broadcast updates to its
  local strategy view ("All nodes need to maintain an up to date view of
  the strategies assigned to all other SSets").

In **executable** mode the payloads are real strategies and fitness values,
so a simulated parallel run follows the exact trajectory of the serial
driver (pinned by tests).  In **cost-only** mode the same message schedule
runs with dummy fitness (timing studies at rank counts where carrying
science data would be wasteful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..core.config import EvolutionConfig
from ..core.evolution import EventRecord
from ..core.nature import NatureAgent
from ..core.payoff_cache import PayoffCache
from ..core.strategy import Strategy
from ..mpisim.ops import Bcast, Compute, Isend, Op, Recv
from .costs import DECISION_BYTES, FITNESS_BYTES, CostModel
from .decomposition import Decomposition

__all__ = [
    "TAG_TEACHER",
    "TAG_LEARNER",
    "TAG_PARTIAL",
    "GenDecision",
    "nature_program",
    "worker_program",
]

TAG_TEACHER = 11
TAG_LEARNER = 12
TAG_PARTIAL = 13


@dataclass(frozen=True)
class GenDecision:
    """Per-generation decisions broadcast by the Nature Agent."""

    #: (teacher_sset, learner_sset) or None when no PC event fires.
    pc: tuple[int, int] | None
    mutation: bool


def _fitness_of(
    sset_id: int,
    strategies: list[Strategy],
    cache: PayoffCache,
    include_self_play: bool,
) -> float:
    """Fitness of one SSet against the full strategy view (paper IV.D)."""
    me = strategies[sset_id]
    total = 0.0
    for j, other in enumerate(strategies):
        if j == sset_id and not include_self_play:
            continue
        total += cache.payoff_to(me, other)
    return total


def nature_program(
    nature: NatureAgent,
    initial_strategies: list[Strategy],
    costs: CostModel,
    decomposition: Decomposition,
    events_out: list[EventRecord],
) -> Iterator[Op]:
    """The Nature Agent (rank 0): master of population dynamics."""
    evolution = costs.evolution
    # Mutated in place: the caller keeps the reference to read the final
    # record after the run (the Nature Agent is the records keeper).
    strategies = initial_strategies
    strat_bytes = costs.strategy_bytes()

    # Initial setup phase: broadcast the master seed + globals; every rank
    # derives its initial strategies locally from rank data (Section V), so
    # the wire size is constant.  In-process we carry the derived strategy
    # list as the payload for the executable mode's convenience.
    yield Bcast(root=0, nbytes=64, payload=tuple(strategies))

    for generation in range(evolution.generations):
        events = nature.generation_events()
        pc_decision = (
            nature.pc_selection(len(strategies)) if events.pc else None
        )
        decision = GenDecision(
            pc=(pc_decision.teacher, pc_decision.learner) if pc_decision else None,
            mutation=events.mutation,
        )
        yield Bcast(root=0, nbytes=DECISION_BYTES, payload=decision)

        if pc_decision is not None:
            teacher_worker = decomposition.owner_of(pc_decision.teacher)
            learner_worker = decomposition.owner_of(pc_decision.learner)
            fit_t = yield Recv(source=1 + teacher_worker, tag=TAG_TEACHER)
            fit_l = yield Recv(source=1 + learner_worker, tag=TAG_LEARNER)
            yield Compute(costs.nature_event_time(), label="nature")
            adopted = nature.decide_learning(pc_decision, fit_t, fit_l)
            update: tuple[int, Strategy] | None = None
            if adopted:
                update = (pc_decision.learner, strategies[pc_decision.teacher])
            yield Bcast(root=0, nbytes=strat_bytes + 8, payload=update)
            if update is not None:
                strategies[update[0]] = update[1]
            events_out.append(
                EventRecord(
                    generation=generation,
                    kind="pc",
                    source=pc_decision.teacher,
                    target=pc_decision.learner,
                    applied=adopted,
                    teacher_fitness=fit_t,
                    learner_fitness=fit_l,
                )
            )

        if events.mutation:
            mutation = nature.mutation_selection(len(strategies))
            yield Bcast(
                root=0,
                nbytes=strat_bytes + 8,
                payload=(mutation.target, mutation.strategy),
            )
            strategies[mutation.target] = mutation.strategy
            events_out.append(
                EventRecord(
                    generation=generation,
                    kind="mutation",
                    source=mutation.target,
                    target=mutation.target,
                    applied=True,
                )
            )


def worker_program(
    worker: int,
    costs: CostModel,
    decomposition: Decomposition,
    cache: PayoffCache | None,
    final_views: dict[int, list[Strategy]] | None = None,
) -> Iterator[Op]:
    """A worker rank: local game play + population-update participation.

    Parameters
    ----------
    worker:
        Worker index (rank = worker + 1).
    cache:
        Shared payoff cache in executable mode; ``None`` selects cost-only
        mode (dummy fitness, same message schedule).
    final_views:
        When given, the worker deposits its final strategy view here
        (used by tests to check every rank converged to the same view).
    """
    evolution = costs.evolution
    parallel = costs.parallel
    block = decomposition.block_for_worker(worker)
    strat_bytes = costs.strategy_bytes()
    executable = cache is not None

    # Per-generation game time for this rank's share of the population.
    if block.is_split:
        game_time = costs.split_rank_game_time(decomposition) if block.sset_ids else 0.0
        exposure = 0.0  # split mode charges duplication overhead instead
    else:
        game_time = costs.rank_game_time(len(block.sset_ids))
        exposure = (
            costs.exposed_sync(len(block.sset_ids))
            if decomposition.ratio >= 1.0 and block.sset_ids
            else 0.0
        )

    # Initial strategy assignment from the Nature Agent (the size is taken
    # from the root's matching Bcast).
    strategies: list[Strategy] = []
    initial = yield Bcast(root=0, nbytes=0)
    if executable:
        strategies = list(initial)

    for _generation in range(evolution.generations):
        decision: GenDecision = yield Bcast(root=0, nbytes=DECISION_BYTES)

        if game_time > 0.0:
            yield Compute(game_time, label="games")

        if decision.pc is not None:
            teacher, learner = decision.pc
            for sset_id, tag in ((teacher, TAG_TEACHER), (learner, TAG_LEARNER)):
                members = decomposition.group_members(sset_id)
                my_positions = [
                    i for i, m in enumerate(members) if m == worker
                ]
                if not my_positions:
                    continue
                if executable:
                    fitness = _fitness_of(
                        sset_id, strategies, cache, evolution.include_self_play
                    )
                    if block.is_split:
                        # Each member computed a share; model the value as
                        # the leader's reduction of exact partials.
                        fitness_share = fitness / len(members)
                    else:
                        fitness_share = fitness
                else:
                    fitness = 0.0
                    fitness_share = 0.0
                if len(members) == 1:
                    yield Isend(dest=0, tag=tag, nbytes=FITNESS_BYTES, payload=fitness)
                elif worker == members[0]:
                    # Group leader: gather partials, reduce, answer Nature.
                    total = fitness_share
                    for _ in members[1:]:
                        part = yield Recv(source=-1, tag=TAG_PARTIAL)
                        total += part
                    yield Isend(dest=0, tag=tag, nbytes=FITNESS_BYTES, payload=total)
                else:
                    yield Isend(
                        dest=1 + members[0],
                        tag=TAG_PARTIAL,
                        nbytes=FITNESS_BYTES,
                        payload=fitness_share,
                    )
            update = yield Bcast(root=0, nbytes=strat_bytes + 8)
            if executable and update is not None:
                strategies[update[0]] = update[1]

        if decision.mutation:
            mutated = yield Bcast(root=0, nbytes=strat_bytes + 8)
            if executable and mutated is not None:
                strategies[mutated[0]] = mutated[1]

        if exposure > 0.0:
            yield Compute(exposure, label="exposed-sync")

    if final_views is not None and executable:
        final_views[worker] = strategies
