"""Optimisation levels of the paper's code (Figure 3).

The paper tunes its implementation in three steps on top of the original
code (Section VI.B.1):

1. **ORIGINAL** — blocking fitness returns, unoptimised compiler output.
2. **NONBLOCKING** ("Comm") — non-blocking point-to-point fitness returns
   that can overlap with the remaining SSets' game play ("This change only
   reduces the average communication time by a small factor as the bulk of
   the communication is spent in global broadcasts").
3. **COMPILER** — compiler optimisation of the game kernel (the big win).
4. **INTRINSICS** ("Instruction") — hand-coded fused multiply-add in the
   fitness calculation ("the fitness calculation was hand-coded to use the
   built-in fpadd instruction").

The machine specs' calibrated kernel constants describe the fully tuned
kernel (INTRINSICS); earlier levels multiply the kernel time *up* and the
ORIGINAL level additionally loses the communication/computation overlap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OptimizationLevel", "OptimizationEffects", "effects_for"]


class OptimizationLevel(enum.Enum):
    """The four bars of the paper's Figure 3, in order."""

    ORIGINAL = "original"
    NONBLOCKING = "nonblocking"
    COMPILER = "compiler"
    INTRINSICS = "intrinsics"

    @property
    def order(self) -> int:
        """Position in the optimisation sequence (0 = original)."""
        return list(OptimizationLevel).index(self)


@dataclass(frozen=True)
class OptimizationEffects:
    """How a level changes the cost model."""

    #: Multiplier on the per-round game kernel time, relative to the fully
    #: tuned kernel (the INTRINSICS level, whose constants are calibrated
    #: in :mod:`repro.machine.bluegene`).
    compute_factor: float
    #: Whether fitness returns are non-blocking (overlap-capable).
    nonblocking: bool


_EFFECTS = {
    # ~2.1x: unoptimised compiler + no fmad (Fig. 3's ~4600 s bar).
    OptimizationLevel.ORIGINAL: OptimizationEffects(2.1, nonblocking=False),
    # Same kernel, overlapped fitness returns (the small Fig. 3 step).
    OptimizationLevel.NONBLOCKING: OptimizationEffects(2.1, nonblocking=True),
    # Compiler-optimised kernel (the big Fig. 3 step).
    OptimizationLevel.COMPILER: OptimizationEffects(1.15, nonblocking=True),
    # Hand-coded fpadd fitness accumulation (the final ~15 %).
    OptimizationLevel.INTRINSICS: OptimizationEffects(1.0, nonblocking=True),
}


def effects_for(level: OptimizationLevel) -> OptimizationEffects:
    """Cost-model effects of an optimisation level."""
    return _EFFECTS[level]
