"""The cost model shared by the DES programs and the analytic scaling model.

All virtual-time charges in the parallel framework come from this module so
that the discrete-event simulation and the closed-form performance model
(:mod:`repro.perfmodel`) cannot drift apart — they are two evaluators of the
same cost vocabulary:

* ``t_round(n)`` — calibrated per-round game-kernel time; grows ~n^2 with
  memory steps because the paper's kernel *searches* for the current state
  ("The increase in runtime actually comes from identifying this state",
  Fig. 5).
* per-SSet game time — opponents x rounds x t_round, divided by the hybrid
  thread speedup, plus a loop overhead.
* exposed synchronisation — the empirically calibrated non-overlapped
  communication per generation.  It is expressed as ``sync_fraction`` of one
  SSet's game time and is *hidden* by the game play of additional local
  SSets: a rank holding R SSets can overlap up to ``(R-1)`` SSet-times of
  communication, which reproduces the paper's sharp Table VI knee (55 % at
  R=1, 99.7 % at R=2).  Blocking communication (ORIGINAL level) never
  overlaps.
* split overhead — duplicated work when an SSet's games are divided across
  a rank group (Fig. 6b's 82 % at R=0.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import EvolutionConfig
from ..core.states import num_states
from ..machine.bluegene import MachineSpec
from .config import ParallelConfig
from .decomposition import Decomposition
from .optimizations import OptimizationEffects, effects_for

__all__ = ["CostModel", "DECISION_BYTES", "FITNESS_BYTES"]

#: Broadcast payload of a generation's event decisions (two SSet ids + flags).
DECISION_BYTES: int = 16
#: One fitness value returned to the Nature Agent.
FITNESS_BYTES: int = 8


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost evaluator for one (machine, run) combination."""

    spec: MachineSpec
    evolution: EvolutionConfig
    parallel: ParallelConfig

    # -- building blocks -----------------------------------------------------

    @property
    def effects(self) -> OptimizationEffects:
        return effects_for(self.parallel.optimization)

    @property
    def thread_speedup(self) -> float:
        """Speedup of the per-SSet game loop from threads (hybrid model).

        Threads mapped onto dedicated cores scale nearly linearly; threads
        sharing a core via SMT add the small calibrated gain the paper saw
        (~2 % for 32 ranks x 2 threads on BG/Q).
        """
        threads = self.parallel.threads_per_rank
        if threads == 1:
            return 1.0
        rpn = self.parallel.ranks_per_node or self.spec.default_ranks_per_node
        cores_per_rank = self.spec.cores_per_node / rpn
        dedicated = max(1.0, min(threads, cores_per_rank))
        smt_threads = threads - dedicated
        smt_gain = 0.02
        return dedicated + max(0.0, smt_threads) * smt_gain

    def t_round(self) -> float:
        """Per game-round kernel time at the configured optimisation level."""
        return self.spec.t_round(self.evolution.memory_steps) * self.effects.compute_factor

    def strategy_bytes(self) -> int:
        """Wire size of one strategy table."""
        per_state = 8 if self.evolution.mixed_strategies else 1
        return num_states(self.evolution.memory_steps) * per_state

    # -- per-SSet / per-rank compute ------------------------------------------

    def sset_game_time(self, n_opponents: int | None = None) -> float:
        """Game-play time for one whole SSet (all its opponent games)."""
        opp = (
            self.parallel.effective_opponents(self.evolution)
            if n_opponents is None
            else n_opponents
        )
        serial = opp * self.evolution.rounds * self.t_round()
        threaded = serial / self.thread_speedup
        if self.parallel.threads_per_rank > 1:
            threaded += self.spec.thread_fork_overhead
        return threaded + self.spec.t_sset_overhead

    def rank_game_time(self, n_local_ssets: int) -> float:
        """Game-play time of a rank holding ``n_local_ssets`` whole SSets."""
        return n_local_ssets * self.sset_game_time()

    def split_rank_game_time(self, decomposition: Decomposition) -> float:
        """Game-play time of one member of a split group.

        Each member handles ``1/g`` of the SSet's opponents but pays the
        calibrated duplicated-work overhead for every extra group member
        (state setup, strategy-view traversal).
        """
        g = decomposition.group_size
        opp_total = self.parallel.effective_opponents(self.evolution)
        share = decomposition.opponents_share(opp_total, split_index=0)
        base = self.sset_game_time(share)
        return base * (1.0 + self.spec.split_overhead * (g - 1))

    # -- communication ------------------------------------------------------------

    def sync_exposure_base(self) -> float:
        """Calibrated per-generation synchronisation exposure (seconds).

        Modelled as ``sync_fraction`` x (games per SSet) x (a per-game
        baseline constant, the memory-one round cost): synchronisation
        stalls scale with the number of games a rank interleaves with
        messaging, not with the state-identification cost of longer
        memories — which is why the paper's Fig. 5 communication bars stay
        small and flat across memory steps while its Table VI still shows
        the 55 % knee at one SSet per processor.
        """
        opp = self.parallel.effective_opponents(self.evolution)
        per_game = self.evolution.rounds * self.spec.t_round(1)
        return (
            self.spec.sync_fraction
            * opp
            * per_game
            * self.effects.compute_factor
            / self.thread_speedup
        )

    def exposed_sync(self, ssets_per_rank: float) -> float:
        """Un-overlapped per-generation synchronisation time for one rank.

        Non-blocking levels hide the exposure behind the game play of the
        other ``(R - 1)`` local SSets; blocking levels never hide it.
        Idle-rank regimes (R < 1, whole mode) show as idleness instead
        (see DESIGN.md section 6).
        """
        exposure = self.sync_exposure_base()
        if not self.effects.nonblocking:
            return exposure
        credit = max(0.0, (ssets_per_rank - 1.0)) * self.sset_game_time()
        return max(0.0, exposure - credit)

    def nature_event_time(self) -> float:
        """Nature Agent bookkeeping per evolutionary event."""
        return self.spec.t_nature_event

    # -- expected per-generation aggregates (analytic model inputs) ----------------

    def expected_update_broadcasts(self) -> float:
        """Expected strategy-update broadcasts per generation.

        One after each PC event (the learner's new assignment must reach
        every rank's strategy view) and one per mutation.
        """
        return self.evolution.pc_rate + self.evolution.mutation_rate

    def expected_p2p_fitness_messages(self) -> float:
        """Expected fitness returns per generation (two per PC event)."""
        return 2.0 * self.evolution.pc_rate
