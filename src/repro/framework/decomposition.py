"""SSet-to-rank decomposition (the paper's multi-level parallel scheme).

Rank 0 is the Nature Agent; worker ranks 1..P-1 hold SSets.  Two regimes:

* **Whole-SSet assignment** (``split_ssets=False``): SSets are distributed
  in contiguous blocks, ``ceil`` sized; when there are fewer SSets than
  workers the excess workers idle.  This is the regime of the paper's
  Figure 4 / Table VI study, where parallel efficiency collapses to
  ``R/ceil(R)`` below one SSet per processor.

* **Split-SSet assignment** (``split_ssets=True``): when ``S < workers``
  each SSet's *opponent games* are divided across a contiguous rank group;
  group members compute partial fitness and the group leader reduces the
  partials before answering the Nature Agent.  This is the Fig. 6b regime
  ("SSets are being split at suboptimal levels"), costing a calibrated
  duplicated-work overhead per extra group member.

The mapping is computable from ``(rank, sizes)`` alone — the paper notes
each node derives its assignments locally from rank data, avoiding any
assignment broadcast; we keep that property (pure functions, no state).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DecompositionError

__all__ = ["SSetBlock", "Decomposition"]


@dataclass(frozen=True)
class SSetBlock:
    """What one worker rank works on."""

    #: SSet ids this rank computes games for.
    sset_ids: tuple[int, ...]
    #: For split mode: this rank's share index within the SSet's group.
    split_index: int = 0
    #: For split mode: number of ranks sharing each of this rank's SSets.
    split_group_size: int = 1

    @property
    def is_split(self) -> bool:
        return self.split_group_size > 1


@dataclass(frozen=True)
class Decomposition:
    """SSets onto worker ranks (Nature Agent = rank 0 holds none)."""

    n_ssets: int
    n_workers: int
    split_ssets: bool = False

    def __post_init__(self) -> None:
        if self.n_ssets < 1:
            raise DecompositionError(f"n_ssets must be >= 1, got {self.n_ssets}")
        if self.n_workers < 1:
            raise DecompositionError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def ratio(self) -> float:
        """R — SSets per worker (the paper's Table VI knob)."""
        return self.n_ssets / self.n_workers

    @property
    def split_active(self) -> bool:
        """Whether split mode actually engages (S < workers and enabled)."""
        return self.split_ssets and self.n_ssets < self.n_workers

    @property
    def group_size(self) -> int:
        """Ranks per SSet when splitting (1 otherwise)."""
        if not self.split_active:
            return 1
        return self.n_workers // self.n_ssets

    # -- whole-SSet block mapping -----------------------------------------------

    def _block_bounds(self, worker: int) -> tuple[int, int]:
        """Contiguous [lo, hi) SSet range of a worker (balanced blocks)."""
        s, w = self.n_ssets, self.n_workers
        base, extra = divmod(s, w)
        if worker < extra:
            lo = worker * (base + 1)
            return lo, lo + base + 1
        lo = extra * (base + 1) + (worker - extra) * base
        return lo, lo + base

    # -- public mapping -------------------------------------------------------------

    def block_for_worker(self, worker: int) -> SSetBlock:
        """The assignment of worker ``worker`` (0-based worker index)."""
        if not 0 <= worker < self.n_workers:
            raise DecompositionError(
                f"worker {worker} out of range 0..{self.n_workers - 1}"
            )
        if self.split_active:
            g = self.group_size
            sset = worker // g
            if sset >= self.n_ssets:
                # Workers beyond S*g idle (remainder when W % S != 0).
                return SSetBlock(sset_ids=())
            return SSetBlock(
                sset_ids=(sset,),
                split_index=worker % g,
                split_group_size=g,
            )
        lo, hi = self._block_bounds(worker)
        return SSetBlock(sset_ids=tuple(range(lo, hi)))

    def owner_of(self, sset_id: int) -> int:
        """Worker index owning (or leading the group of) ``sset_id``."""
        if not 0 <= sset_id < self.n_ssets:
            raise DecompositionError(f"sset {sset_id} out of range")
        if self.split_active:
            return sset_id * self.group_size
        s, w = self.n_ssets, self.n_workers
        base, extra = divmod(s, w)
        boundary = extra * (base + 1)
        if sset_id < boundary:
            return sset_id // (base + 1)
        if base == 0:
            raise DecompositionError(
                f"sset {sset_id} unassigned: more workers than SSets without "
                "split mode leaves no owner past the boundary"
            )
        return extra + (sset_id - boundary) // base

    def group_members(self, sset_id: int) -> tuple[int, ...]:
        """Worker indices collaborating on ``sset_id`` (leader first)."""
        if not self.split_active:
            return (self.owner_of(sset_id),)
        g = self.group_size
        lead = sset_id * g
        return tuple(range(lead, lead + g))

    def opponents_share(self, n_opponents: int, split_index: int) -> int:
        """Opponent games handled by one member of a split group."""
        g = self.group_size
        base, extra = divmod(n_opponents, g)
        return base + (1 if split_index < extra else 0)

    def max_ssets_per_worker(self) -> int:
        """The load of the most loaded worker (whole mode: ceil(S/W))."""
        if self.split_active:
            return 1
        return -(-self.n_ssets // self.n_workers)

    def validate_cover(self) -> None:
        """Check every SSet is assigned exactly once (debug/test helper)."""
        seen: dict[int, int] = {}
        for w in range(self.n_workers):
            block = self.block_for_worker(w)
            for s in block.sset_ids:
                if block.split_index == 0:
                    seen[s] = seen.get(s, 0) + 1
        missing = [s for s in range(self.n_ssets) if seen.get(s, 0) != 1]
        if missing:
            raise DecompositionError(
                f"SSets not covered exactly once: {missing[:10]} ..."
            )
