"""The paper's parallel framework on the simulated Blue Gene substrate.

Maps an :class:`~repro.core.EvolutionConfig` onto a machine model: SSets to
MPI ranks (whole blocks or split groups), agents to threads, Nature Agent on
rank 0; runs the real algorithm through the DES (executable mode) or the
pure message/cost schedule (cost-only mode).
"""

from .config import ParallelConfig
from .costs import DECISION_BYTES, FITNESS_BYTES, CostModel
from .decomposition import Decomposition, SSetBlock
from .driver import MAX_DES_RANKS, ParallelResult, run_parallel_simulation
from .optimizations import OptimizationEffects, OptimizationLevel, effects_for
from .programs import GenDecision, nature_program, worker_program

__all__ = [
    "ParallelConfig",
    "CostModel",
    "DECISION_BYTES",
    "FITNESS_BYTES",
    "Decomposition",
    "SSetBlock",
    "MAX_DES_RANKS",
    "ParallelResult",
    "run_parallel_simulation",
    "OptimizationEffects",
    "OptimizationLevel",
    "effects_for",
    "GenDecision",
    "nature_program",
    "worker_program",
]
