"""Strong- and weak-scaling predictors (Figures 4, 6a, 6b; Table VI).

These helpers sweep rank counts through :class:`~repro.perfmodel.analytic.
AnalyticModel` and reduce the results to the quantities the paper plots:
parallel efficiency (percent of ideal speedup) and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import EvolutionConfig
from ..errors import ConfigurationError
from ..framework.config import ParallelConfig
from .analytic import AnalyticModel

__all__ = ["ScalingPoint", "ScalingCurve", "strong_scaling", "weak_scaling", "ratio_sweep"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (processor count, time) sample of a scaling study.

    Speedup and efficiency are measured over *worker* processors (the
    Nature Agent is a constant +1 on every configuration and is excluded
    from the ideal-speedup accounting, as in the paper's plots).
    """

    n_ranks: int
    time: float
    speedup: float
    efficiency: float  # fraction of ideal (0..1]
    ssets_per_worker: float

    @property
    def n_workers(self) -> int:
        return self.n_ranks - 1


@dataclass(frozen=True)
class ScalingCurve:
    """A full scaling study."""

    label: str
    points: list[ScalingPoint]

    def efficiencies_percent(self) -> list[float]:
        return [100.0 * p.efficiency for p in self.points]


def _check_ranks(rank_counts: list[int]) -> None:
    if not rank_counts:
        raise ConfigurationError("need at least one rank count")
    if sorted(rank_counts) != rank_counts:
        raise ConfigurationError("rank counts must be ascending")
    if rank_counts[0] < 2:
        raise ConfigurationError("rank counts must be >= 2 (Nature + worker)")


def strong_scaling(
    evolution: EvolutionConfig,
    parallel_base: ParallelConfig,
    rank_counts: list[int],
    label: str | None = None,
) -> ScalingCurve:
    """Fixed problem, growing machine (Figures 4 and 6b).

    Efficiency is relative to the smallest rank count in the sweep, as in
    the paper ("percent of ideal speedup achieved for each processor
    count").
    """
    _check_ranks(rank_counts)
    times = []
    for p in rank_counts:
        model = AnalyticModel(evolution, parallel_base.with_updates(n_ranks=p))
        times.append(model.total_time())
    w0, t0 = rank_counts[0] - 1, times[0]
    points = []
    for p, t in zip(rank_counts, times):
        speedup = t0 / t * w0
        points.append(
            ScalingPoint(
                n_ranks=p,
                time=t,
                speedup=speedup,
                efficiency=speedup / (p - 1),
                ssets_per_worker=evolution.n_ssets / (p - 1),
            )
        )
    return ScalingCurve(label=label or f"{evolution.n_ssets} SSets", points=points)


def weak_scaling(
    evolution_per_rank: EvolutionConfig,
    parallel_base: ParallelConfig,
    rank_counts: list[int],
    ssets_per_worker: int,
    label: str | None = None,
) -> ScalingCurve:
    """Fixed work per processor, growing machine (Figure 6a).

    The population grows with the machine (``ssets_per_worker`` per worker)
    while each SSet's opponent-game count stays fixed
    (``parallel_base.opponents_per_sset``; see DESIGN.md section 6 for why
    all-vs-all weak scaling is not what the paper can have measured).
    """
    _check_ranks(rank_counts)
    if parallel_base.opponents_per_sset is None:
        raise ConfigurationError(
            "weak scaling requires a fixed opponents_per_sset (constant "
            "work per processor); None means all-vs-all, which grows with P"
        )
    times = []
    for p in rank_counts:
        evo = evolution_per_rank.with_updates(n_ssets=ssets_per_worker * (p - 1))
        model = AnalyticModel(evo, parallel_base.with_updates(n_ranks=p))
        times.append(model.total_time())
    t0 = times[0]
    points = []
    for p, t in zip(rank_counts, times):
        eff = t0 / t
        points.append(
            ScalingPoint(
                n_ranks=p,
                time=t,
                speedup=eff * p,
                efficiency=eff,
                ssets_per_worker=float(ssets_per_worker),
            )
        )
    return ScalingCurve(
        label=label or f"{ssets_per_worker} SSets/processor", points=points
    )


def ratio_sweep(
    evolution: EvolutionConfig,
    parallel_base: ParallelConfig,
    ratios: list[float],
    n_workers: int = 1024,
) -> list[tuple[float, float]]:
    """Efficiency as a function of R = SSets/processor (Table VI).

    Holds the worker count fixed and varies the population so that
    R = S / workers takes each requested value; efficiency is each
    configuration's useful-work fraction:

        eff(R) = (R * t_sset) / T_gen

    i.e. per-generation game time a perfectly balanced rank would need,
    over the modelled critical path.
    """
    out = []
    for ratio in ratios:
        n_ssets = round(ratio * n_workers)
        if n_ssets < 1:
            raise ConfigurationError(f"ratio {ratio} gives an empty population")
        evo = evolution.with_updates(n_ssets=n_ssets)
        model = AnalyticModel(evo, parallel_base.with_updates(n_ranks=n_workers + 1))
        gen = model.generation_time()
        useful = (n_ssets / n_workers) * model.costs.sset_game_time()
        out.append((ratio, 100.0 * useful / gen.total))
    return out
