"""Cross-validation of the analytic model against the DES.

The honesty contract of DESIGN.md section 2: the closed-form model is only
trusted at paper scale because it matches the discrete-event simulation at
the scales both can run.  :func:`validate_against_des` runs both evaluators
over a grid of small configurations and reports relative errors;
:func:`assert_calibrated` raises :class:`~repro.errors.CalibrationError`
when any error exceeds the tolerance.  The test suite executes this check,
and the large-scale benchmarks re-run it before extrapolating.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import EvolutionConfig
from ..errors import CalibrationError
from ..framework.config import ParallelConfig
from ..framework.driver import run_parallel_simulation
from .analytic import AnalyticModel

__all__ = ["CalibrationPoint", "validate_against_des", "assert_calibrated"]


@dataclass(frozen=True)
class CalibrationPoint:
    """One DES-vs-analytic comparison."""

    n_ranks: int
    n_ssets: int
    des_makespan: float
    analytic_makespan: float

    @property
    def relative_error(self) -> float:
        return abs(self.des_makespan - self.analytic_makespan) / self.des_makespan


def validate_against_des(
    evolution: EvolutionConfig,
    parallel: ParallelConfig,
    rank_counts: list[int],
    sset_counts: list[int],
) -> list[CalibrationPoint]:
    """Run DES and analytic model over a grid; return the comparison.

    Uses cost-only DES runs (the science does not affect the schedule's
    expected cost) with enough generations for the event-rate expectation
    to hold.
    """
    points = []
    for n_ranks in rank_counts:
        for n_ssets in sset_counts:
            evo = evolution.with_updates(n_ssets=max(2, n_ssets))
            par = parallel.with_updates(n_ranks=n_ranks, executable=False)
            des = run_parallel_simulation(evo, par)
            model = AnalyticModel(evo, par)
            points.append(
                CalibrationPoint(
                    n_ranks=n_ranks,
                    n_ssets=evo.n_ssets,
                    des_makespan=des.makespan,
                    analytic_makespan=model.total_time(),
                )
            )
    return points


def assert_calibrated(
    points: list[CalibrationPoint], tolerance: float = 0.15
) -> None:
    """Raise :class:`CalibrationError` if any point misses the tolerance."""
    bad = [p for p in points if p.relative_error > tolerance]
    if bad:
        detail = ", ".join(
            f"(ranks={p.n_ranks}, ssets={p.n_ssets}: "
            f"DES={p.des_makespan:.4g}s vs model={p.analytic_makespan:.4g}s, "
            f"err={p.relative_error:.1%})"
            for p in bad[:5]
        )
        raise CalibrationError(
            f"analytic model disagrees with DES beyond {tolerance:.0%}: {detail}"
        )
