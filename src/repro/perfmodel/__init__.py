"""Calibrated analytic scaling model (paper-scale performance evaluation).

Shares the cost vocabulary of :mod:`repro.framework.costs` with the DES and
is validated against it (:mod:`repro.perfmodel.calibrate`) before being
trusted at Blue Gene scale (Figures 4, 6a, 6b; Table VI).
"""

from .analytic import AnalyticModel, GenerationTime
from .calibrate import (
    CalibrationPoint,
    assert_calibrated,
    validate_against_des,
)
from .scaling import (
    ScalingCurve,
    ScalingPoint,
    ratio_sweep,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "AnalyticModel",
    "GenerationTime",
    "CalibrationPoint",
    "assert_calibrated",
    "validate_against_des",
    "ScalingCurve",
    "ScalingPoint",
    "ratio_sweep",
    "strong_scaling",
    "weak_scaling",
]
