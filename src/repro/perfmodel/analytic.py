"""Closed-form per-generation time model (the paper-scale evaluator).

The DES (:mod:`repro.framework.driver`) executes the real message schedule
but costs O(ranks x generations) host time; this module evaluates the *same
cost vocabulary* (:class:`repro.framework.costs.CostModel`) in closed form,
so Blue Gene/P runs at 294,912 processors (Fig. 6a) are a microsecond
computation.  :mod:`repro.perfmodel.calibrate` pins the two evaluators
against each other on overlapping scales.

Per-generation expected critical path, whole-SSet mode:

    T_gen = ceil(R) * t_sset                      (game play, slowest rank)
          + exposed_sync(ceil(R))                 (Table VI mechanism)
          + t_bcast(16)                           (decisions broadcast)
          + pc_rate * (t_fitness_rtt + t_nature + t_bcast(strat))
          + (pc_rate + mu) * ...                  (update broadcasts)

Split mode replaces the first two terms with the split group's duplicated-
work share plus the partial-fitness reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import EvolutionConfig
from ..framework.config import ParallelConfig
from ..framework.costs import DECISION_BYTES, FITNESS_BYTES, CostModel
from ..framework.decomposition import Decomposition
from ..machine.bluegene import MachineSpec
from ..machine.topology import TorusTopology

__all__ = ["GenerationTime", "AnalyticModel"]


@dataclass(frozen=True)
class GenerationTime:
    """Expected per-generation critical-path decomposition (seconds)."""

    compute: float
    exposed_sync: float
    network: float

    @property
    def total(self) -> float:
        return self.compute + self.exposed_sync + self.network


class AnalyticModel:
    """Closed-form evaluator of a parallel configuration."""

    def __init__(self, evolution: EvolutionConfig, parallel: ParallelConfig):
        self.evolution = evolution
        self.parallel = parallel
        self.costs = CostModel(
            spec=parallel.machine, evolution=evolution, parallel=parallel
        )
        self.decomposition = Decomposition(
            n_ssets=evolution.n_ssets,
            n_workers=parallel.n_workers,
            split_ssets=parallel.split_ssets,
        )

    # -- network primitives (closed-form versions of NetworkModel) ---------

    @property
    def spec(self) -> MachineSpec:
        return self.parallel.machine

    def _tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.parallel.n_ranks))))

    def bcast_time(self, nbytes: int) -> float:
        """Collective-network broadcast (matches NetworkModel.bcast)."""
        return self.spec.alpha_coll * self._tree_depth() + nbytes * self.spec.beta_coll

    def average_p2p_time(self, nbytes: int) -> float:
        """Mean point-to-point transit over the torus (random endpoints)."""
        spec = self.spec
        rpn = self.parallel.ranks_per_node or spec.default_ranks_per_node
        n_nodes = spec.nodes_for_ranks(self.parallel.n_ranks, rpn)
        torus = TorusTopology.for_nodes(n_nodes, spec.torus_dims)
        return (
            spec.alpha_p2p
            + torus.average_hops * spec.hop_latency
            + nbytes * spec.beta_p2p
            + 2 * spec.overhead
        )

    # -- per-generation model -------------------------------------------------

    def generation_time(self) -> GenerationTime:
        """Expected critical-path time of one generation."""
        evo = self.evolution
        dec = self.decomposition
        costs = self.costs

        if dec.split_active:
            compute = costs.split_rank_game_time(dec)
            exposed = 0.0
            reduction = (dec.group_size - 1) * self.average_p2p_time(FITNESS_BYTES)
        else:
            loaded = dec.max_ssets_per_worker()
            compute = costs.rank_game_time(loaded)
            exposed = (
                costs.exposed_sync(loaded) if dec.ratio >= 1.0 else 0.0
            )
            reduction = 0.0

        strat_update_bytes = costs.strategy_bytes() + 8
        network = (
            self.bcast_time(DECISION_BYTES)
            + evo.pc_rate
            * (
                self.average_p2p_time(FITNESS_BYTES)  # fitness returns
                + reduction
                + costs.nature_event_time()
                + self.bcast_time(strat_update_bytes)  # learning update
            )
            + evo.mutation_rate * self.bcast_time(strat_update_bytes)
        )
        return GenerationTime(compute=compute, exposed_sync=exposed, network=network)

    def setup_time(self) -> float:
        """Initial setup broadcast.

        Only the master seed and global parameters travel: each rank
        derives its SSets' initial strategies locally ("we are able to
        leverage the system size and processor rank data to allow each node
        to calculate its position within an SSet ... individually",
        Section V), so setup does not scale with the population.
        """
        return self.bcast_time(64)

    def total_time(self) -> float:
        """Expected virtual wallclock of the whole run."""
        return self.setup_time() + self.evolution.generations * self.generation_time().total

    # -- breakdowns used by the experiments -----------------------------------------

    def compute_comm_split(self) -> tuple[float, float]:
        """(computation, communication) totals over the run (Fig. 5 bars).

        Communication = network waits + exposed synchronisation, matching
        :attr:`repro.framework.driver.ParallelResult.comm_seconds`.
        """
        gen = self.generation_time()
        g = self.evolution.generations
        return g * gen.compute, self.setup_time() + g * (gen.exposed_sync + gen.network)
