"""Structured-population sweep — cooperation across interaction graphs.

Not a paper figure: this is the repo's first *extension* experiment
(ROADMAP "as many scenarios as you can imagine"), motivated by the
structured-population literature (Stewart & Plotkin 2014; Sun, Su & Wang
2025): the same memory-n strategy model evolved on different interaction
graphs, so the effect of population structure can be read off directly
against the paper's well-mixed dynamics.

For every (structure, memory_steps) cell the sweep runs a small ensemble
through the unified front-end and reports the dominant strategy's share,
the mean per-neighborhood cooperation fraction, and the largest
dominant-strategy cluster — the order parameters of spatial game dynamics.

SMOKE runs one memory depth on short horizons; FULL extends to memory-2
and ten times the generations.
"""

from __future__ import annotations

from ..analysis.structured import (
    largest_cluster_fraction,
    neighborhood_cooperation,
)
from ..analysis.tables import format_table
from ..api import run_sweep
from ..core.config import EvolutionConfig
from .registry import ExperimentResult, Scale, get_default_backend, register

__all__ = ["structures"]

#: The sweep's structure axis.  36 SSets: square for the grid (6x6) and
#: even so every ring/regular parameterisation below is feasible.  The
#: small-world and scale-free rows probe the two classic complex-network
#: regimes (short paths + clustering; heavy-tailed hub degrees).
STRUCTURES: tuple[str, ...] = (
    "well-mixed",
    "ring:k=4",
    "grid:rows=6,cols=6",
    "regular:d=4,seed=1",
    "smallworld:k=4,p=0.1,seed=1",
    "scalefree:m=2,seed=1",
)

N_SSETS = 36
RUNS_PER_CELL = 2


def structured_config(
    structure: str, memory_steps: int, generations: int
) -> EvolutionConfig:
    """Config template; per-run seeds come from run_sweep's base_seed."""
    return EvolutionConfig(
        memory_steps=memory_steps,
        n_ssets=N_SSETS,
        generations=generations,
        structure=structure,
        record_events=False,  # the sweep only reads summary metrics
    )


@register(
    "structures",
    "Cooperation across population structures",
    "extension",
)
def structures(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Sweep interaction structures x memory steps; report spatial metrics."""
    generations = 50_000 if scale is Scale.FULL else 5_000
    memories = (1, 2) if scale is Scale.FULL else (1,)
    rows = []
    data: dict[str, dict] = {}
    for memory in memories:
        for structure in STRUCTURES:
            configs = [
                structured_config(structure, memory, generations)
                for _ in range(RUNS_PER_CELL)
            ]
            results = run_sweep(
                configs, backend=get_default_backend(), base_seed=2025
            )
            shares, coops, clusters = [], [], []
            for result in results:
                strategy, share = result.dominant()
                shares.append(share)
                coops.append(
                    float(
                        neighborhood_cooperation(
                            result.population,
                            structure,
                            rounds=result.config.rounds,
                            payoff=result.config.payoff,
                            noise=result.config.noise,
                        ).mean()
                    )
                )
                clusters.append(
                    largest_cluster_fraction(result.population, structure)
                )
            cell = {
                "dominant_share": sum(shares) / len(shares),
                "neighborhood_cooperation": sum(coops) / len(coops),
                "largest_cluster_fraction": sum(clusters) / len(clusters),
            }
            data[f"m{memory}/{structure}"] = cell
            rows.append(
                [
                    memory,
                    structure,
                    f"{cell['dominant_share']:.2f}",
                    f"{cell['neighborhood_cooperation']:.2f}",
                    f"{cell['largest_cluster_fraction']:.2f}",
                ]
            )
    rendered = format_table(
        ["memory", "structure", "dom share", "nbhd coop", "max cluster"],
        rows,
        title=(
            f"{N_SSETS} SSets, {generations:,} generations, "
            f"{RUNS_PER_CELL} runs/cell"
        ),
    )
    return ExperimentResult(
        experiment_id="structures",
        title="Cooperation across population structures",
        rendered=rendered,
        data=data,
        paper_expectation=(
            "extension beyond the paper: sparse graphs localise learning, "
            "so dominant strategies spread in clusters instead of sweeping "
            "the population"
        ),
    )
