"""Figure 4 and Table VI — small-scale strong scaling on Blue Gene/Q.

Figure 4 sweeps 16..2048 processors for populations of 1024..32768 SSets:
curves stay near 100 % while each processor holds at least ~2 SSets and
collapse once R = SSets/processor drops below ~1 (whole-SSet assignment
leaves ranks idle).  Table VI condenses the same data into efficiency as a
function of R: 50 % at R = 0.5, 55 % at R = 1, >= 99.7 % from R = 2.

Both come from the calibrated analytic model (validated against the DES in
``tests/perfmodel``); rank counts are P workers + 1 Nature Agent.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.config import EvolutionConfig
from ..framework.config import ParallelConfig
from ..machine.bluegene import BLUEGENE_Q
from ..perfmodel.scaling import ratio_sweep, strong_scaling
from .registry import ExperimentResult, Scale, register

__all__ = ["fig4", "table6"]

#: Paper Fig. 4 population sizes.
FIG4_SSET_COUNTS = [1024, 2048, 4096, 8192, 16384, 32768]
#: Paper Fig. 4 processor axis (powers of two, 16..2048).
FIG4_PROCESSORS = [16, 32, 64, 128, 256, 512, 1024, 2048]


def _base_config(n_ssets: int) -> EvolutionConfig:
    return EvolutionConfig(
        memory_steps=1, n_ssets=n_ssets, generations=20, rounds=200, seed=4
    )


@register("fig4", "Strong scaling vs population size", "Figure 4")
def fig4(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Efficiency curves per SSet count over the Fig. 4 processor axis."""
    sset_counts = (
        FIG4_SSET_COUNTS if scale is Scale.FULL else FIG4_SSET_COUNTS[:4]
    )
    processors = FIG4_PROCESSORS
    parallel = ParallelConfig(machine=BLUEGENE_Q, executable=False)
    curves = {}
    for n_ssets in sset_counts:
        curve = strong_scaling(
            _base_config(n_ssets),
            parallel,
            [p + 1 for p in processors],  # + Nature Agent
            label=f"{n_ssets} SSets",
        )
        curves[n_ssets] = curve.efficiencies_percent()
    rows = []
    for i, p in enumerate(processors):
        rows.append([p] + [round(curves[s][i], 1) for s in sset_counts])
    rendered = format_table(
        ["procs"] + [f"{s} SSets" for s in sset_counts],
        rows,
        title="Parallel efficiency (%) vs processors",
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Strong scaling as the number of SSets is increased",
        rendered=rendered,
        data={"processors": processors, "curves": curves},
        paper_expectation=(
            "small populations collapse at high processor counts "
            "(R < 1 -> ~50%), 32768 SSets stays ~100% through 2048 procs"
        ),
    )


@register("table6", "Efficiency vs SSets per processor", "Table VI")
def table6(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Efficiency as a function of R = SSets/processor."""
    ratios = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
    n_workers = 1024 if scale is Scale.FULL else 256
    parallel = ParallelConfig(machine=BLUEGENE_Q, executable=False)
    rows = ratio_sweep(_base_config(2048), parallel, ratios, n_workers=n_workers)
    rendered = format_table(
        ["R"] + [str(r) for r, _ in rows],
        [["P.E. (%)"] + [round(e, 1) for _, e in rows]],
        title="SSets per processor vs parallel efficiency",
    )
    return ExperimentResult(
        experiment_id="table6",
        title="SSet-per-processor ratio vs efficiency",
        rendered=rendered,
        data={"efficiency_by_ratio": {r: e for r, e in rows}},
        paper_expectation="50, 55, 99.7, 99.7, 99.9, 99.9, 99.9, 100, 100",
    )
