"""Tables I–V: the paper's model-definition tables, regenerated from code.

These are "static" in the sense that they follow from the model definition
rather than from simulation — regenerating them validates that our
encodings match the paper's.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.payoff import PAPER_PAYOFF
from ..core.states import MEMORY_ONE_GRAY_ORDER, state_table
from ..core.strategy import (
    all_memory_one_strategies,
    paper_table_v_rows,
    strategy_space_size,
    wsls,
)
from .registry import ExperimentResult, Scale, register

__all__ = ["table1", "table2", "table3", "table4", "table5"]


@register("table1", "The Prisoner's Dilemma payoff matrix", "Table I")
def table1(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Regenerate Table I from the payoff model."""
    t = PAPER_PAYOFF.as_table()
    rows = [
        ["C", f"{t[0][0][0]:.0f},{t[0][0][1]:.0f}", f"{t[0][1][0]:.0f},{t[0][1][1]:.0f}"],
        ["D", f"{t[1][0][0]:.0f},{t[1][0][1]:.0f}", f"{t[1][1][0]:.0f},{t[1][1][1]:.0f}"],
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="PD payoff matrix, f[R,S,T,P] = [3,0,4,1]",
        rendered=format_table(["Agent", "Opp C", "Opp D"], rows),
        data={
            "R": PAPER_PAYOFF.reward,
            "S": PAPER_PAYOFF.sucker,
            "T": PAPER_PAYOFF.temptation,
            "P": PAPER_PAYOFF.punishment,
            "dilemma_ordering": PAPER_PAYOFF.temptation
            > PAPER_PAYOFF.reward
            > PAPER_PAYOFF.punishment
            > PAPER_PAYOFF.sucker,
        },
        paper_expectation="R=3 S=0 T=4 P=1 with T > R > P > S",
    )


@register("table2", "Potential game states for memory-one", "Table II")
def table2(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Regenerate Table II: the four memory-one states."""
    rows = [
        [row.state_id + 1, row.letters()[0], row.letters()[1]]
        for row in state_table(1)
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Memory-one game states",
        rendered=format_table(["State", "Agent", "Opponent"], rows),
        data={"states": [row.letters() for row in state_table(1)]},
        paper_expectation="four states: CC, CD, DC, DD",
    )


@register("table3", "All potential memory-one strategies", "Table III")
def table3(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Regenerate Table III: the 16 memory-one strategies."""
    strategies = all_memory_one_strategies()
    rows = [
        [i + 1] + list(s.letters())
        for i, s in enumerate(strategies)
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="All 16 pure memory-one strategies",
        rendered=format_table(
            ["Strategy", "State1", "State2", "State3", "State4"], rows
        ),
        data={
            "count": len(strategies),
            "distinct": len({s.key() for s in strategies}),
        },
        paper_expectation="16 distinct strategies over 4 states",
    )


@register("table4", "Number of pure strategies vs memory steps", "Table IV")
def table4(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Regenerate Table IV from the paper's own formula.

    Note: the paper's printed rows for memory-4 (2^1024) and memory-5
    (2^2048) contradict its formula (numStates = 4^n, strategies =
    2^numStates gives 2^256 and 2^1024); we print the formula's values and
    flag the difference.
    """
    rows = []
    for n in range(1, 7):
        size = strategy_space_size(n)
        rows.append([n, f"2^{size.bit_length() - 1}"])
    rendered = format_table(["Memory Steps", "Number of Strategies"], rows)
    rendered += (
        "\nnote: paper prints 2^1024 / 2^2048 for n=4/5, inconsistent with "
        "its own numStates = 4^n formula (see DESIGN.md section 3)."
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Strategy-space size per memory step",
        rendered=rendered,
        data={
            "exponents": {n: strategy_space_size(n).bit_length() - 1 for n in range(1, 7)},
            "memory_six_matches_paper": strategy_space_size(6) == 2**4096,
        },
        paper_expectation="2^4, 2^16, 2^64, (2^1024), (2^2048), 2^4096",
    )


@register("table5", "WSLS state table", "Table V")
def table5(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Regenerate Table V (the paper's Gray-code row order)."""
    rows = [
        [state_id, bits, move] for state_id, bits, move in paper_table_v_rows()
    ]
    rendered = format_table(["State", "Current State", "Strategy"], rows)
    return ExperimentResult(
        experiment_id="table5",
        title="WSLS states for memory-one",
        rendered=rendered,
        data={
            "moves_in_paper_order": [m for _, _, m in paper_table_v_rows()],
            "wsls_bits_paper_order": wsls(1).bits(MEMORY_ONE_GRAY_ORDER),
            "wsls_bits_natural": wsls(1).bits(),
        },
        paper_expectation="strategy column 0,1,0,1 over states 00,01,11,10",
    )
