"""Experiment registry: one entry per paper table/figure.

Each experiment is a callable taking a :class:`Scale` and returning an
:class:`ExperimentResult` whose ``rendered`` text reproduces the paper's
rows/series and whose ``data`` holds the raw numbers for programmatic
checks (the benchmarks assert on ``data``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ConfigurationError

__all__ = [
    "Scale",
    "ExperimentResult",
    "Experiment",
    "register",
    "get",
    "all_experiments",
    "run_evolution",
    "get_default_backend",
    "set_default_backend",
]

#: Backend every experiment's evolutions run through (CLI ``--backend``).
_DEFAULT_BACKEND = "event"


def get_default_backend() -> str:
    """Backend name experiments currently run their evolutions on."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> None:
    """Route all experiment evolutions through backend ``name``.

    Lets ``python -m repro run fig2 --backend serial`` cross-check a
    figure on a different execution substrate without touching the
    experiment code.
    """
    from ..api import get_backend

    get_backend(name)  # validate eagerly; raises ConfigurationError
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name


def run_evolution(config, **backend_opts):
    """Run one evolution through the registry's default backend.

    The shared entry point for experiment runners: science code states the
    configuration, the unified :class:`repro.api.Simulation` front-end
    decides how it executes.
    """
    from ..api import Simulation

    return Simulation(config, backend=_DEFAULT_BACKEND, **backend_opts).run()


class Scale(enum.Enum):
    """How much compute an experiment run may spend.

    SMOKE — seconds (benchmarks, CI); FULL — minutes (closer to paper
    parameters, for EXPERIMENTS.md regeneration).
    """

    SMOKE = "smoke"
    FULL = "full"


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    #: Text reproduction of the paper's table/figure series.
    rendered: str
    #: Raw numbers for assertions.
    data: dict[str, Any] = field(default_factory=dict)
    #: What the paper reports, for side-by-side comparison.
    paper_expectation: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        parts = [f"== {self.experiment_id}: {self.title} ==", self.rendered]
        if self.paper_expectation:
            parts.append(f"[paper: {self.paper_expectation}]")
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """A registered table/figure reproduction."""

    experiment_id: str
    title: str
    paper_ref: str
    runner: Callable[[Scale], ExperimentResult]

    def run(self, scale: Scale = Scale.SMOKE) -> ExperimentResult:
        return self.runner(scale)


_REGISTRY: dict[str, Experiment] = {}


def register(
    experiment_id: str, title: str, paper_ref: str
) -> Callable[[Callable[[Scale], ExperimentResult]], Callable[[Scale], ExperimentResult]]:
    """Decorator registering an experiment runner under ``experiment_id``."""

    def wrap(runner: Callable[[Scale], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_ref=paper_ref,
            runner=runner,
        )
        return runner

    return wrap


def get(experiment_id: str) -> Experiment:
    """Look up a registered experiment."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiments() -> list[Experiment]:
    """All registered experiments, by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]
