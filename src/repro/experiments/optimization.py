"""Figure 3 — optimisation levels vs wallclock time.

Paper setup: 4096 SSets, memory-one, 100 generations, 200 rounds/game on
256 processors of Blue Gene/Q; four bars (Original, Comm, Compiler,
Instruction) dropping from ~4600 s to ~2300 s, with the communication
optimisation a small step and the compiler step the large one.

We replay the same configuration through the DES (cost-only mode) at each
optimisation level and report virtual wallclock plus the average
communication time, which is what the paper's Figure 3 tracks.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.config import EvolutionConfig
from ..framework.config import ParallelConfig
from ..framework.driver import run_parallel_simulation
from ..framework.optimizations import OptimizationLevel
from ..machine.bluegene import BLUEGENE_Q
from .registry import ExperimentResult, Scale, register

__all__ = ["fig3"]


def fig3_config(scale: Scale) -> tuple[EvolutionConfig, ParallelConfig]:
    """The Fig. 3 configuration (SMOKE shrinks ranks and generations)."""
    if scale is Scale.FULL:
        n_ranks, generations, n_ssets = 257, 100, 4096
    else:
        n_ranks, generations, n_ssets = 33, 20, 512
    evolution = EvolutionConfig(
        memory_steps=1,
        n_ssets=n_ssets,
        generations=generations,
        rounds=200,
        seed=3,
    )
    parallel = ParallelConfig(
        machine=BLUEGENE_Q, n_ranks=n_ranks, executable=False
    )
    return evolution, parallel


@register("fig3", "Optimisation levels vs runtime", "Figure 3")
def fig3(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Measure virtual wallclock per optimisation level."""
    evolution, parallel = fig3_config(scale)
    rows = []
    times: dict[str, float] = {}
    comms: dict[str, float] = {}
    for level in OptimizationLevel:
        result = run_parallel_simulation(
            evolution, parallel.with_updates(optimization=level)
        )
        times[level.value] = result.makespan
        comms[level.value] = result.comm_seconds / parallel.n_ranks
        rows.append(
            [
                level.value,
                round(result.makespan, 2),
                round(comms[level.value], 3),
            ]
        )
    rendered = format_table(
        ["optimisation", "wallclock (s)", "avg comm/rank (s)"],
        rows,
        title=f"{evolution.n_ssets} SSets, memory-one, "
        f"{evolution.generations} generations, {parallel.n_ranks} ranks",
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Optimisation levels and their runtime impact",
        rendered=rendered,
        data={"times": times, "comms": comms},
        paper_expectation=(
            "monotone drop ~4600 -> ~2300 s; comm step small, compiler "
            "step large, instruction step ~15%"
        ),
    )
