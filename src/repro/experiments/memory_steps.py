"""Figure 5 — runtime breakdown vs memory steps.

Paper setup: 2048 SSets for 20 generations, PC rate 0.1, on 2048 processors
of Blue Gene/P.  Computation grows steeply with memory steps (the kernel's
state identification: ~n^2 in our calibrated model, giving memory-six ~220 s
vs memory-one ~11 s) while the communication bar stays small and nearly
flat (strategy broadcasts grow to 4 KB but remain microseconds).

SMOKE scale evaluates the analytic model (instant, DES-validated); FULL
additionally replays memory-one and memory-six through the DES at the full
2049 ranks and cross-checks the model.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.config import EvolutionConfig
from ..framework.config import ParallelConfig
from ..framework.driver import run_parallel_simulation
from ..machine.bluegene import BLUEGENE_P
from ..perfmodel.analytic import AnalyticModel
from .registry import ExperimentResult, Scale, register

__all__ = ["fig5"]


def fig5_config(memory_steps: int) -> EvolutionConfig:
    return EvolutionConfig(
        memory_steps=memory_steps,
        n_ssets=2048,
        generations=20,
        rounds=200,
        seed=5,
    )


@register("fig5", "Runtime vs memory steps", "Figure 5")
def fig5(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Compute/communication split for memory-one through memory-six."""
    parallel = ParallelConfig(
        machine=BLUEGENE_P, n_ranks=2049, executable=False
    )
    rows = []
    compute = {}
    comm = {}
    for n in range(1, 7):
        model = AnalyticModel(fig5_config(n), parallel)
        comp_total, comm_total = model.compute_comm_split()
        # Per-rank view (the paper plots per-run wallclock on 2048 procs).
        compute[n] = comp_total
        comm[n] = comm_total
        rows.append([n, round(comp_total, 1), round(comm_total, 2)])
    rendered = format_table(
        ["memory steps", "computation (s)", "communication (s)"],
        rows,
        title="2048 SSets, 20 generations, 2048 processors (BG/P)",
    )
    checks = {}
    if scale is Scale.FULL:
        for n in (1, 6):
            des = run_parallel_simulation(fig5_config(n), parallel)
            checks[n] = {
                "des_makespan": des.makespan,
                "model_makespan": AnalyticModel(
                    fig5_config(n), parallel
                ).total_time(),
            }
    return ExperimentResult(
        experiment_id="fig5",
        title="Run time analysis for varying memory steps",
        rendered=rendered,
        data={"compute": compute, "comm": comm, "des_checks": checks},
        paper_expectation=(
            "computation rises steeply with memory steps (memory-six "
            "~220 s vs memory-one ~10 s); communication small and flat"
        ),
    )
