"""Experiment harness: regenerates every table and figure of the paper.

Usage::

    from repro.experiments import get, all_experiments, Scale
    print(get("table6").run(Scale.SMOKE))

Registered experiments: table1..table5 (model-definition tables), fig2
(validation), fig3 (optimisation levels), fig4 + table6 (strong scaling /
R sweep), fig5 (memory steps), fig6a/fig6b (large-scale weak/strong
scaling), claim-mem6 (memory-capacity limit), structures (extension:
cooperation across population structures), noise_memory (extension:
noise x memory phase diagram on the batched sampled-fitness path).  The
benchmarks in
``benchmarks/`` execute these runners and assert the paper's shapes.
"""

from .registry import (
    Experiment,
    ExperimentResult,
    Scale,
    all_experiments,
    get,
    get_default_backend,
    run_evolution,
    set_default_backend,
)

# Importing the modules registers the experiments.
from . import large_scale  # noqa: E402,F401
from . import memory_limit  # noqa: E402,F401
from . import memory_steps  # noqa: E402,F401
from . import noise_memory  # noqa: E402,F401
from . import optimization  # noqa: E402,F401
from . import strong_scaling  # noqa: E402,F401
from . import structured  # noqa: E402,F401
from . import tables_static  # noqa: E402,F401
from . import validation  # noqa: E402,F401

__all__ = [
    "Experiment",
    "ExperimentResult",
    "Scale",
    "all_experiments",
    "get",
    "get_default_backend",
    "run_evolution",
    "set_default_backend",
]
