"""Noise x memory phase diagram — cooperation under execution errors.

Not a paper figure: an *extension* experiment in the spirit of the
paper's Section III.F motivation ("Win-Stay Lose-Shift ... outperform[s]
TFT in the presence of errors") and of Stewart & Plotkin's noisy
memory-one analyses: the same evolutionary model swept over execution
error rate x memory depth, so the error-robustness payoff of longer
memories can be read off as a phase diagram.

Noisy cells run on the batched sampled-fitness fast path
(``sampled_batched=True`` over the ensemble backend — every event
generation's sampled games fused into one vectorised kernel call across
replicate lanes); the noise-free baseline column keeps the deterministic
cached evaluator.  Each cell reports the dominant strategy's population
share and its long-run self-play cooperation rate at the cell's error
rate (the exact Markov stationary rate, the same metric
``examples/error_robustness.py`` uses for the classic strategies).

SMOKE runs memory 1-2 on short horizons over three error rates; FULL
extends to memory-3, a finer noise axis, and ten times the generations.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..api import run_sweep
from ..core.config import EvolutionConfig
from ..core.markov import stationary_cooperation_rate
from .registry import ExperimentResult, Scale, register

__all__ = ["noise_memory"]

N_SSETS = 16
RUNS_PER_CELL = 4


def noise_memory_config(
    noise: float, memory_steps: int, generations: int
) -> EvolutionConfig:
    """Config template; per-run seeds come from run_sweep's base_seed.

    ``sampled_batched`` is only legal (and only meaningful) for the
    sampled-stochastic regime, so the noise-free baseline column stays on
    the deterministic cached evaluator.
    """
    return EvolutionConfig(
        memory_steps=memory_steps,
        n_ssets=N_SSETS,
        generations=generations,
        noise=noise,
        sampled_batched=noise > 0.0,
        record_events=False,  # the sweep only reads summary metrics
    )


@register(
    "noise_memory",
    "Cooperation vs noise x memory depth",
    "extension",
)
def noise_memory(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Sweep error rate x memory steps; report dominant-strategy metrics."""
    generations = 50_000 if scale is Scale.FULL else 5_000
    memories = (1, 2, 3) if scale is Scale.FULL else (1, 2)
    noises = (
        (0.0, 0.005, 0.01, 0.02, 0.05)
        if scale is Scale.FULL
        else (0.0, 0.01, 0.05)
    )
    rows = []
    data: dict[str, dict] = {}
    for memory in memories:
        for noise in noises:
            configs = [
                noise_memory_config(noise, memory, generations)
                for _ in range(RUNS_PER_CELL)
            ]
            results = run_sweep(configs, backend="ensemble", base_seed=2013)
            shares, coops = [], []
            for result in results:
                strategy, share = result.dominant()
                shares.append(share)
                coops.append(
                    stationary_cooperation_rate(strategy, strategy, noise)
                )
            cell = {
                "dominant_share": sum(shares) / len(shares),
                "self_play_cooperation": sum(coops) / len(coops),
            }
            data[f"m{memory}/eps{noise}"] = cell
            rows.append(
                [
                    memory,
                    noise,
                    f"{cell['dominant_share']:.2f}",
                    f"{cell['self_play_cooperation']:.2f}",
                ]
            )
    rendered = format_table(
        ["memory", "noise", "dom share", "self-play coop"],
        rows,
        title=(
            f"{N_SSETS} SSets, {generations:,} generations, "
            f"{RUNS_PER_CELL} runs/cell (noisy cells: batched sampled "
            f"fitness)"
        ),
    )
    return ExperimentResult(
        experiment_id="noise_memory",
        title="Cooperation vs noise x memory depth",
        rendered=rendered,
        data=data,
        paper_expectation=(
            "extension beyond the paper: error-correcting strategies "
            "(WSLS-like) need memory to repair mistakes, so cooperation "
            "should survive larger error rates at deeper memories"
        ),
    )
