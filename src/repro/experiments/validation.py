"""Figure 2 — the validation run (WSLS study, 5000 SSets, 10^7 generations).

The paper initialises 5,000 SSets with random pure memory-one strategies,
evolves them for 10^7 generations with PC rate 0.1 and mu = 0.05, clusters
the final raster with Lloyd k-means, and reports that 85 % of SSets adopted
``0101`` (WSLS in the paper's Gray-code display order; ``0110`` naturally).

Our reproduction runs the same dynamics (event-driven driver — exactly the
same Markov chain as the faithful loop — with exact expected fitness under
trembling-hand errors).  **Measured deviation**: with the paper's stated
pairwise-comparison dynamics and payoffs, the population reproducibly
converges to GRIM (``0111``), one bit from WSLS (GRIM defects after mutual
defection, WSLS re-cooperates), for every payoff matrix, error rate,
selection intensity, and learning-gate variant we scanned — including the
Nowak–Sigmund (5,3,1,0) payoffs and mixed strategy spaces.  Both GRIM and
WSLS are "nice, retaliatory" strategies that sustain full cooperation among
themselves; the *emergence of a cooperative equilibrium from random
initialisation* reproduces, the specific one-bit winner does not (the
paper's selection details beyond Eq. 1 are unstated; see EXPERIMENTS.md).

To cover the part of the WSLS story that *is* well-defined, the experiment
also reproduces Section III.F's error analysis: WSLS-vs-WSLS cooperation
recovers from errors while TFT-vs-TFT degrades to ~50 %.
"""

from __future__ import annotations

import numpy as np

from ..analysis.heatmap import render_raster
from ..analysis.kmeans import cluster_order, lloyd_kmeans
from ..analysis.tables import format_table
from ..core.config import EvolutionConfig
from ..core.markov import stationary_cooperation_rate
from ..core.states import MEMORY_ONE_GRAY_ORDER
from ..core.strategy import grim, tft, wsls
from ..rng import make_rng
from .registry import ExperimentResult, Scale, register, run_evolution

__all__ = ["fig2"]


def validation_config(scale: Scale) -> EvolutionConfig:
    """The validation run's configuration at the requested scale.

    SMOKE: 256 SSets / 2*10^5 generations (seconds).  FULL: 5,000 SSets /
    10^7 generations, the paper's sizes (minutes, thanks to the
    event-driven driver + payoff cache).
    """
    if scale is Scale.FULL:
        n_ssets, generations = 5_000, 10_000_000
    else:
        n_ssets, generations = 256, 200_000
    return EvolutionConfig(
        memory_steps=1,
        n_ssets=n_ssets,
        generations=generations,
        rounds=200,
        noise=0.01,  # Section III.F errors; WSLS's raison d'etre
        expected_fitness=True,
        seed=2013,
        # The 10^7-generation FULL run would otherwise accumulate ~1.5M
        # EventRecord objects; the experiment only reads the rasters.
        record_events=False,
    )


@register("fig2", "Validation: evolved memory-one population", "Figure 2")
def fig2(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Run the validation experiment and render the before/after rasters."""
    config = validation_config(scale)
    result = run_evolution(config)

    initial = result.snapshots[0].strategy_matrix
    final = result.population.strategy_matrix()
    clustering = lloyd_kmeans(final.astype(np.float64), k=4, rng=make_rng(0))
    order = cluster_order(clustering)

    raster_before = render_raster(
        initial,
        column_order=MEMORY_ONE_GRAY_ORDER,
        max_rows=24,
        title="(a) generation 0",
    )
    raster_after = render_raster(
        final,
        row_order=order,
        column_order=MEMORY_ONE_GRAY_ORDER,
        max_rows=24,
        title=f"(b) generation {config.generations:,}",
    )

    dominant, share = result.dominant()
    shares = {
        "GRIM": result.population.share_of(grim(1)),
        "WSLS": result.population.share_of(wsls(1)),
        "TFT": result.population.share_of(tft(1)),
    }
    error_rows = []
    for noise in (0.0, 0.01, 0.05):
        error_rows.append(
            [
                noise,
                round(stationary_cooperation_rate(wsls(1), wsls(1), noise), 3),
                round(stationary_cooperation_rate(tft(1), tft(1), noise), 3),
            ]
        )
    error_table = format_table(
        ["noise", "WSLS vs WSLS coop", "TFT vs TFT coop"],
        error_rows,
        title="Error robustness (Section III.F)",
    )

    summary = format_table(
        ["quantity", "value"],
        [
            ["dominant strategy (natural/gray)", f"{dominant.bits()}/{dominant.bits(MEMORY_ONE_GRAY_ORDER)}"],
            ["dominant share", f"{share:.1%}"],
            ["WSLS share", f"{shares['WSLS']:.1%}"],
            ["GRIM share", f"{shares['GRIM']:.1%}"],
            ["PC events", result.n_pc_events],
            ["mutations", result.n_mutations],
        ],
    )
    rendered = "\n\n".join([raster_before, raster_after, summary, error_table])
    return ExperimentResult(
        experiment_id="fig2",
        title="Evolved population raster + dominant strategy",
        rendered=rendered,
        data={
            "dominant_bits": dominant.bits(),
            "dominant_share": share,
            "shares": shares,
            "n_pc_events": result.n_pc_events,
            "n_mutations": result.n_mutations,
            "cluster_sizes": clustering.cluster_sizes().tolist(),
            "wsls_coop_under_noise": error_rows[1][1],
            "tft_coop_under_noise": error_rows[1][2],
        },
        paper_expectation=(
            "85% of SSets adopt 0101 (WSLS, Gray order) after 10^7 "
            "generations; measured: a cooperative retaliatory strategy "
            "(GRIM, one bit from WSLS) dominates — see EXPERIMENTS.md"
        ),
    )
