"""The memory-capacity claim — "memory-six is the highest-level strategy
that can be modeled on current supercomputing platforms due to memory
restrictions" (paper abstract / Section V).

Regenerated from the machine memory model: with the paper's 32,768-strategy
working set, a Blue Gene/P virtual-node-mode rank (512 MB) fits memory-six
strategy tables (128 MB) but not memory-seven (512 MB + overheads); BG/Q at
32 ranks/node has the same 512 MB/rank budget.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..machine.bluegene import BLUEGENE_P, BLUEGENE_Q
from ..machine.memory import estimate_footprint, max_memory_steps
from .registry import ExperimentResult, Scale, register

__all__ = ["claim_memory_limit"]

PAPER_STRATEGY_WORKING_SET = 32_768


@register(
    "claim-mem6",
    "Memory-six is the largest model that fits",
    "Abstract / Section V",
)
def claim_memory_limit(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Evaluate the per-rank footprint per memory step on both machines."""
    rows = []
    for n in range(1, 8):
        fp = estimate_footprint(
            n, PAPER_STRATEGY_WORKING_SET, ssets_per_rank=4096
        )
        rows.append(
            [
                n,
                f"{fp.strategy_store / 1024**2:,.0f} MB",
                f"{fp.total / 1024**2:,.0f} MB",
                "yes" if fp.total <= BLUEGENE_P.memory_per_rank_bytes() else "NO",
            ]
        )
    rendered = format_table(
        ["memory steps", "strategy store", "total/rank", "fits 512 MB rank"],
        rows,
        title=f"{PAPER_STRATEGY_WORKING_SET:,} strategies, BG/P VN mode",
    )
    limits = {
        "BG/P": max_memory_steps(BLUEGENE_P, PAPER_STRATEGY_WORKING_SET),
        "BG/Q": max_memory_steps(BLUEGENE_Q, PAPER_STRATEGY_WORKING_SET),
    }
    rendered += f"\nmax memory steps: BG/P = {limits['BG/P']}, BG/Q = {limits['BG/Q']}"
    return ExperimentResult(
        experiment_id="claim-mem6",
        title="Memory-capacity limit",
        rendered=rendered,
        data={"limits": limits},
        paper_expectation="memory-six is the limit on both platforms",
    )
