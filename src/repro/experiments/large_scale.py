"""Figure 6 — large-scale weak and strong scaling (BG/P and BG/Q).

* **Fig. 6a (weak scaling)**: memory-six, 4096 SSets per processor, up to
  294,912 processors on BG/P and 16,384 on BG/Q.  Work per processor is
  held constant (fixed opponent-sample per SSet; DESIGN.md section 6), so
  efficiency only loses the slowly growing collective latency — near
  perfect, the paper's "99 % weak scaling".

* **Fig. 6b (strong scaling)**: 32,768 distinct strategies (the BG/P
  memory limit) over 131,072 SSets, 1,024 -> 262,144 processors with
  split-SSet decomposition: linear to 16,384 ("99 %"), 82 % at 262,144
  where each processor holds half an SSet.

Both figures come from the calibrated analytic model; rank counts include
the Nature Agent (P workers + 1).
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.config import EvolutionConfig
from ..framework.config import ParallelConfig
from ..machine.bluegene import BLUEGENE_P, BLUEGENE_Q
from ..perfmodel.scaling import strong_scaling, weak_scaling
from .registry import ExperimentResult, Scale, register

__all__ = ["fig6a", "fig6b"]

#: Fig. 6a processor axes.
WEAK_BGP_PROCS = [1024, 4096, 16384, 65536, 294912]
WEAK_BGQ_PROCS = [1024, 4096, 16384]
#: Fig. 6b processor axis ("tests on 1,024, 2,048, 8,192, 16,384, and
#: 262,144 processors").
STRONG_PROCS = [1024, 2048, 8192, 16384, 262144]


@register("fig6a", "Weak scaling to 294,912 processors", "Figure 6a")
def fig6a(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Weak scaling: 4096 SSets/processor, memory-six."""
    evo = EvolutionConfig(
        memory_steps=6, n_ssets=2, generations=5, rounds=200, seed=6
    )
    ssets_per_worker = 4096 if scale is Scale.FULL else 256
    opponents = 4  # fixed opponent sample: constant games/processor
    curves = {}
    for machine, procs, label in (
        (BLUEGENE_P, WEAK_BGP_PROCS, "BG/P"),
        (BLUEGENE_Q, WEAK_BGQ_PROCS, "BG/Q"),
    ):
        parallel = ParallelConfig(
            machine=machine, executable=False, opponents_per_sset=opponents
        )
        curve = weak_scaling(
            evo,
            parallel,
            [p + 1 for p in procs],
            ssets_per_worker=ssets_per_worker,
            label=label,
        )
        curves[label] = list(zip(procs, curve.efficiencies_percent()))
    rows = []
    for label, series in curves.items():
        for p, eff in series:
            rows.append([label, p, round(eff, 2)])
    rendered = format_table(
        ["machine", "processors", "weak efficiency (%)"],
        rows,
        title=f"memory-six, {ssets_per_worker} SSets/processor",
    )
    return ExperimentResult(
        experiment_id="fig6a",
        title="Weak scaling (memory-six)",
        rendered=rendered,
        data={"curves": curves},
        paper_expectation="~99% weak scaling to 294,912 procs (BG/P), "
        "equivalent to 16,384 on BG/Q",
    )


@register("fig6b", "Strong scaling to 262,144 processors", "Figure 6b")
def fig6b(scale: Scale = Scale.SMOKE) -> ExperimentResult:
    """Strong scaling with split-SSet decomposition (memory-six)."""
    evo = EvolutionConfig(
        memory_steps=6,
        n_ssets=131_072,  # 32,768 strategies, half an SSet/proc at 262,144
        generations=5,
        rounds=200,
        seed=6,
    )
    parallel = ParallelConfig(
        machine=BLUEGENE_P, executable=False, split_ssets=True
    )
    curve = strong_scaling(evo, parallel, [p + 1 for p in STRONG_PROCS])
    rows = []
    for p, point in zip(STRONG_PROCS, curve.points):
        rows.append(
            [
                p,
                f"{point.speedup:,.0f}",
                round(100.0 * point.efficiency, 1),
                round(point.ssets_per_worker, 3),
            ]
        )
    rendered = format_table(
        ["processors", "speedup", "efficiency (%)", "SSets/proc"],
        rows,
        title="131,072 SSets (32,768 strategies), memory-six, BG/P",
    )
    effs = curve.efficiencies_percent()
    return ExperimentResult(
        experiment_id="fig6b",
        title="Strong scaling (memory-six, split SSets)",
        rendered=rendered,
        data={
            "processors": STRONG_PROCS,
            "efficiencies": effs,
            "speedups": [pt.speedup for pt in curve.points],
        },
        paper_expectation=(
            "99% linear scaling through 16,384 procs; 82% at 262,144 "
            "(SSets split to half per processor)"
        ),
    )
