"""Shared interned-strategy engine for lane-batched ensembles.

One :class:`EnsembleEngine` serves *every* lane (replicate) of a
deterministic-regime ensemble: a single strategy pool and a single dense
payoff matrix are shared across lanes, because deterministic cycle-exact
payoffs are a pure function of the two strategy tables plus ``(rounds,
payoff)`` — they carry no seed and no population state.  A strategy that
appears in many lanes (ALLD, the dominant cooperative strategies, every
memory-1 table) is interned and evaluated **once** for the whole ensemble.

Differences from the per-run :class:`~repro.core.engine.FitnessEngine`:

* **Global reference counts, demand-driven fills.**  The per-run engine
  eagerly fills a new sid's row/column against its own (single)
  population.  Here an eager fill against all lanes' live strategies would
  evaluate ~R times too many pairs, so the matrix is filled *on query*:
  :meth:`ensure_rows` checks the exact ``(focal row) x (lane sids)`` block
  a fitness gather is about to read and batch-evaluates only the missing
  pairs — across all of a generation's event lanes in one
  :func:`~repro.core.vectorgame.cycle_payoffs_pairs` call.

* **Two-way validity, row-only invalidation.**  A pair ``(a, b)`` is valid
  iff ``evaluated[a, b] and evaluated[b, a]`` (fills always set both).
  Recycling a slot therefore only needs to clear its *row* — a contiguous
  memset — because the stale *column* entries fail the reversed check.

* **Gather fitness.**  Well-mixed fitness is ``paymat[sid, lane_sids].sum()``
  — a sum over SSets instead of the per-run engine's ``counts @ paymat[sid]``
  sum over distinct strategies.  Both are sums of the same integer-valued
  float64 terms, hence bit-equal (the engine refuses non-integer payoff
  matrices, exactly like the per-run deterministic engine), which is what
  keeps every lane on the same-seed serial trajectory.  Graph fitness runs
  the same way at ensemble scale: one flat CSR gather plus a segment
  reduction across *all* of a generation's event lanes
  (:meth:`EnsembleEngine.fitness_pc_graph`), with
  ``paymat[sid, lane_sids[neighbors]].sum()`` as the per-lane scalar view.

The expected-fitness regime cannot share a matrix across lanes: its Markov
kernel is not bitwise perspective-symmetric, so an entry's last-ulp value
depends on which side evaluated the pair first — a per-lane property.  The
ensemble driver runs those lanes with per-lane
:class:`~repro.core.engine.FitnessEngine` instances instead (see
:mod:`repro.ensemble.driver`).
"""

from __future__ import annotations

import numpy as np

from ..core.config import EvolutionConfig
from ..core.engine import is_integer_payoff
from ..core.paymat import BlockedPairStore, DensePairStore
from ..core.payoff import PAPER_PAYOFF, PayoffMatrix
from ..core.states import num_states
from ..core.strategy import Strategy
from ..core.vectorgame import cycle_payoffs_pairs
from ..errors import ConfigurationError, SimulationError, StrategyError
from ..xp import get_array_backend

__all__ = ["EnsembleEngine", "supports_shared_engine"]

#: Pairs per cycle_payoffs_pairs call — bounds the kernel's (L, 4**n)
#: scratch arrays during the big early-coverage fills.
_MAX_FILL_CHUNK = 1 << 15


def supports_shared_engine(config: EvolutionConfig) -> bool:
    """Whether ``config`` runs on the shared deterministic ensemble engine.

    Mirrors :meth:`repro.core.engine.FitnessEngine.from_config`: the dense
    shared matrix serves exactly the configurations whose per-run engine
    would be the eager deterministic one (pure strategies, no noise,
    integer payoffs, ``engine`` enabled).  Everything else the ensemble
    driver runs through per-lane evaluators.
    """
    if not config.engine or config.is_stochastic:
        return False
    if config.expected_fitness and (
        config.noise > 0.0 or config.mixed_strategies
    ):
        return False
    return is_integer_payoff(config.payoff)


class EnsembleEngine:
    """Dense payoff-matrix fitness shared across the lanes of an ensemble."""

    def __init__(
        self,
        memory_steps: int,
        rounds: int,
        payoff: PayoffMatrix = PAPER_PAYOFF,
        n_lanes: int = 1,
        capacity: int = 64,
        paymat_block: int = 0,
        block_cap: int = 0,
        array_backend: str | None = None,
    ):
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if memory_steps < 1:
            raise ConfigurationError(
                f"memory_steps must be >= 1, got {memory_steps}"
            )
        if n_lanes < 1:
            raise ConfigurationError(f"n_lanes must be >= 1, got {n_lanes}")
        if not is_integer_payoff(payoff):
            raise ConfigurationError(
                "the shared ensemble engine is float-exact (hence lane-"
                "trajectory-identical to the serial engine) only for integer "
                f"payoff matrices, got {list(payoff.vector)}"
            )
        self.memory_steps = memory_steps
        self.n_states = num_states(memory_steps)
        self.rounds = rounds
        self.payoff = payoff
        self.n_lanes = n_lanes
        capacity = max(1, capacity)
        self._tables = np.zeros((capacity, self.n_states), dtype=np.uint8)
        self._strategies: list[Strategy | None] = [None] * capacity
        self._ids: dict[bytes, int] = {}
        #: Total references across all lanes (plain ints: the accounting is
        #: scalar hot-path work); a slot is recycled at zero.
        self._refs: list[int] = [0] * capacity
        self._free = list(range(capacity - 1, -1, -1))
        # Game totals are integers bounded by rounds * max|payoff|; when
        # they fit float32's exact-integer range the matrix is stored at
        # half the footprint (big ensembles intern thousands of strategies)
        # and summed in float64, which is bit-identical either way.
        max_total = rounds * max(abs(float(v)) for v in payoff.vector)
        self._dtype = np.float32 if max_total < 2.0**24 else np.float64
        self.xb = get_array_backend(array_backend)
        if paymat_block:
            self._store: DensePairStore | BlockedPairStore = BlockedPairStore(
                capacity,
                paymat_block,
                self._dtype,
                self.xb,
                track_evaluated=True,
                block_cap=block_cap,
            )
        else:
            self._store = DensePairStore(capacity, self._dtype, self.xb)
        #: Pair evaluations performed, attributed to the demanding lane.
        self.lane_fills = np.zeros(n_lanes, dtype=np.int64)
        self.fills = 0
        self.fill_calls = 0

    # -- views ----------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._tables.shape[0]

    @property
    def tables(self) -> np.ndarray:
        """The stacked strategy tables (live rows valid)."""
        return self._tables

    @property
    def paymat(self):
        """The shared payoff matrix view (gather only after ensure_rows).

        Dense stores expose the raw ndarray; blocked stores expose the
        store itself, which speaks the same ``paymat[rows, cols]`` gather
        dialect (host arrays out).
        """
        return self._store.paymat

    @property
    def evictable(self) -> bool:
        """Whether payoff blocks can be evicted mid-run (LRU-capped blocked
        store).  Drivers must not rely on fill-once full coverage then."""
        return self._store.evictable

    def __len__(self) -> int:
        """Number of distinct live strategies across all lanes."""
        return len(self._ids)

    def strategy(self, sid: int) -> Strategy:
        found = self._strategies[sid]
        if found is None:
            raise SimulationError(f"slot {sid} is free (no live strategy)")
        return found

    def stats(self) -> dict[str, int]:
        """Shared-engine counters + memory accounting for reports/benchmarks."""
        stats = {
            "lanes": self.n_lanes,
            "distinct": len(self._ids),
            "capacity": self.capacity,
            "fills": int(self.fills),
            "fill_calls": int(self.fill_calls),
        }
        stats.update(self._store.stats())
        return stats

    # -- interning ------------------------------------------------------------

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        tables = np.zeros((new, self.n_states), dtype=np.uint8)
        tables[:old] = self._tables
        self._tables = tables
        self._store.grow(new)
        self._strategies.extend([None] * (new - old))
        self._refs.extend([0] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def acquire(self, strategy: Strategy) -> int:
        """Intern one reference to ``strategy`` (any lane's, or a window
        prefetch pin — references are global; only recycling depends on
        them)."""
        if strategy.memory_steps != self.memory_steps:
            raise StrategyError(
                f"engine interns memory-{self.memory_steps} strategies, got "
                f"memory-{strategy.memory_steps}"
            )
        if not strategy.is_pure:
            raise StrategyError(
                "the shared ensemble engine serves pure strategies only"
            )
        key = strategy.key()
        sid = self._ids.get(key)
        if sid is None:
            if not self._free:
                self._grow()
            sid = self._free.pop()
            self._tables[sid] = strategy.table
            self._strategies[sid] = strategy
            self._ids[key] = sid
        self._refs[sid] += 1
        return sid

    def release(self, sid: int) -> None:
        """Drop one reference; recycle the slot at zero references."""
        left = self._refs[sid] - 1
        if left < 0:
            raise SimulationError(f"release of sid {sid} with no references")
        self._refs[sid] = left
        if left == 0:
            self.recycle(sid)

    def recycle(self, sid: int) -> None:
        """Free a zero-reference slot (the driver inlines the refcount
        decrements on its hot path and calls this on the rare zero).

        Recycling invalidates the slot's row in one store call; column
        direction staleness is the store's problem (the dense store
        checks validity two-way, the blocked store's epoch-sum stamps
        go stale in both directions at once).
        """
        strategy = self._strategies[sid]
        assert strategy is not None
        del self._ids[strategy.key()]
        self._strategies[sid] = None
        self._store.invalidate_row(sid)
        self._free.append(sid)

    def intern_lane(self, strategies: list[Strategy]) -> np.ndarray:
        """Bulk-intern one lane's population; returns its sid array."""
        return np.array(
            [self.acquire(s) for s in strategies], dtype=np.int64
        )

    def compact(self, min_capacity: int = 256) -> np.ndarray | None:
        """Re-pack live slots into a smaller matrix when mostly free.

        The initial populations of a big ensemble intern thousands of
        mostly-distinct random strategies; once selection concentrates the
        lanes, the live set is a small fraction of the grown capacity and
        every fitness gather scatters across a huge, cold matrix.
        Compacting renumbers the live sids densely (science-neutral: sids
        carry no meaning, and the surviving matrix entries move verbatim).

        Returns the ``old sid -> new sid`` mapping for the caller to apply
        to its sid arrays, or ``None`` when compaction isn't worthwhile.
        Callers must hold no pinned/prefetched sids across this call.
        """
        capacity = self.capacity
        n_live = len(self._ids)
        # Hysteresis: compact only below 1/8 occupancy, down to 4x headroom,
        # so the matrix never thrashes between compact() and _grow() as the
        # mutation churn breathes around the steady-state strategy count.
        if capacity <= min_capacity or n_live * 8 > capacity:
            return None
        live = [sid for sid in range(capacity) if self._refs[sid] > 0]
        new_cap = max(min_capacity, 1 << (4 * n_live - 1).bit_length())
        if new_cap >= capacity:
            return None
        idx = np.asarray(live, dtype=np.intp)
        tables = np.zeros((new_cap, self.n_states), dtype=np.uint8)
        tables[:n_live] = self._tables[idx]
        store = self._store.rebuild(idx, new_cap)
        strategies: list[Strategy | None] = [None] * new_cap
        refs = [0] * new_cap
        mapping = np.full(capacity, -1, dtype=np.int64)
        for new_sid, old_sid in enumerate(live):
            strategies[new_sid] = self._strategies[old_sid]
            refs[new_sid] = self._refs[old_sid]
            mapping[old_sid] = new_sid
        self._tables = tables
        self._store = store
        self._strategies = strategies
        self._refs = refs
        self._ids = {
            s.key(): sid for sid, s in enumerate(strategies) if s is not None
        }
        self._free = list(range(new_cap - 1, n_live - 1, -1))
        return mapping

    # -- fills ----------------------------------------------------------------

    def _fill_pairs(self, a: np.ndarray, b: np.ndarray) -> None:
        """Evaluate ordered pairs (both directions stored), chunked."""
        compact = self._dtype == np.float32  # same 2**24 exactness bound
        for lo in range(0, len(a), _MAX_FILL_CHUNK):
            a_c = a[lo : lo + _MAX_FILL_CHUNK]
            b_c = b[lo : lo + _MAX_FILL_CHUNK]
            pay_a, pay_b = cycle_payoffs_pairs(
                self._tables, a_c, b_c, self.rounds, self.payoff,
                compact_sums=compact,
            )
            self._store.write_pairs(a_c, b_c, pay_a, pay_b)
            self.fill_calls += 1
        self.fills += len(a)

    def _fill_unique(
        self, a: np.ndarray, b: np.ndarray, lanes: np.ndarray
    ) -> None:
        """Dedupe known-missing (a[i], b[i]) pairs and evaluate them, with
        per-lane evaluation attribution."""
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        _, first = np.unique(lo * self.capacity + hi, return_index=True)
        self._fill_pairs(lo[first], hi[first])
        np.add.at(self.lane_fills, lanes[first], 1)

    def ensure_rows(
        self, focal: np.ndarray, blocks: np.ndarray, lanes: np.ndarray
    ) -> None:
        """Make the ``(focal[i], blocks[i, :])`` matrix entries valid.

        ``focal`` is (M,) sids about to be gathered as rows, ``blocks`` the
        (M, N) sid blocks they are gathered against, ``lanes`` the (M,)
        demanding lanes (evaluation-count attribution only).  Missing pairs
        across all M queries are deduplicated and evaluated in one batched
        kernel call.
        """
        self._store.tick()
        ok = self.xb.to_host(self._store.pair_valid(focal[:, None], blocks))
        if ok.all():
            return
        miss_r, miss_c = np.nonzero(~ok)
        self._fill_unique(
            focal[miss_r], blocks[miss_r, miss_c], lanes[miss_r]
        )

    def fill_missing(
        self, a: np.ndarray, b: np.ndarray, lanes: np.ndarray
    ) -> None:
        """Evaluate whichever of the (a[i], b[i]) pairs are not yet valid —
        the window-prefetch entry point (mutant rows filled ahead of their
        first fitness query)."""
        self._store.tick()
        missing = ~self.xb.to_host(self._store.pair_valid(a, b))
        if not missing.any():
            return
        self._fill_unique(a[missing], b[missing], lanes[missing])

    def ensure_pair(self, lane: int, sid_a: int, sid_b: int) -> None:
        """Make one matrix entry valid (graph self-play reads the diagonal,
        which neighbor blocks never cover)."""
        self._store.tick()
        if bool(self.xb.to_host(self._store.pair_valid(sid_a, sid_b))):
            return
        self._fill_pairs(
            np.array([sid_a], dtype=np.int64), np.array([sid_b], dtype=np.int64)
        )
        self.lane_fills[lane] += 1

    # -- fitness --------------------------------------------------------------

    def fitness_pc_well_mixed(
        self,
        lane_sids: np.ndarray,
        teacher_sids: np.ndarray,
        learner_sids: np.ndarray,
        include_self_play: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Teacher/learner fitness for many lanes' PC events at once.

        ``lane_sids`` is the ``(k, n_ssets)`` sid block of the k event
        lanes; fitness is one payoff-matrix gather per side, summed over
        SSets — bit-equal to the per-run engine's ``counts @ paymat[sid]``
        because integer payoffs sum exactly in float64 in any order.
        """
        store = self._store
        # One stacked (2, k, n) gather covers both sides — per-call index
        # arithmetic is the blocked store's overhead, so halving the call
        # count matters more than the (identical) element count.
        focal = np.stack((teacher_sids, learner_sids))
        # dtype=float64 keeps the accumulation exact (and bit-identical)
        # when the matrix itself is stored as float32.
        fit = store.take(focal[:, :, None], lane_sids[None, :, :]).sum(
            axis=2, dtype=np.float64
        )
        if not include_self_play:
            fit = fit - store.take(focal, focal)
        fit = self.xb.to_host(fit)
        return fit[0], fit[1]

    def fitness_neighbors(
        self,
        sid: int,
        neighbor_sids: np.ndarray,
        include_self_play: bool = False,
    ) -> np.floating:
        """One lane's graph fitness: a per-lane neighbor gather."""
        total = self._store.take(sid, neighbor_sids).sum(dtype=np.float64)
        if include_self_play:
            total = total + np.float64(
                self.xb.to_host(self._store.take(sid, sid))
            )
        return self.xb.to_host(total)

    def fitness_pc_graph(
        self,
        sids: np.ndarray,
        lanes: np.ndarray,
        teachers: np.ndarray,
        learners: np.ndarray,
        structure,
        include_self_play: bool = False,
        ensure: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Teacher/learner graph fitness for many lanes' PC events at once.

        ``sids`` is the full ``(R, n_ssets)`` sid array, ``lanes`` the (k,)
        event lanes of this generation, ``teachers``/``learners`` their
        selected nodes, ``structure`` the shared
        :class:`~repro.structure.graphs.GraphStructure`.  All 2k focal
        neighborhoods are resolved through one CSR segment plan
        (:meth:`~repro.structure.graphs.GraphStructure.neighbor_segments`)
        into a single payoff-matrix gather plus one
        :func:`numpy.add.reduceat` reduction — the graph analogue of
        :meth:`fitness_pc_well_mixed`, and bit-equal to per-lane
        :meth:`fitness_neighbors` gathers because integer payoffs sum
        exactly in float64 in any order.

        With ``ensure`` (the deep-memory on-demand regime) every pair a
        gather will read — focal x neighbor, plus the self-play diagonal —
        is validated/filled first through :meth:`fill_missing`.
        """
        nodes = np.concatenate((teachers, learners))
        lanes2 = np.concatenate((lanes, lanes))
        flat, seg = structure.neighbor_segments(nodes)
        deg = np.diff(seg)
        focal_sids = sids[lanes2, nodes]
        focal_rep = np.repeat(focal_sids, deg)
        lane_rep = np.repeat(lanes2, deg)
        nbr_sids = sids[lane_rep, flat]
        if ensure:
            if include_self_play:
                self.fill_missing(
                    np.concatenate((focal_rep, focal_sids)),
                    np.concatenate((nbr_sids, focal_sids)),
                    np.concatenate((lane_rep, lanes2)),
                )
            else:
                self.fill_missing(focal_rep, nbr_sids, lane_rep)
        vals = self._store.take(focal_rep, nbr_sids)
        fit = self.xb.segment_reduce(vals, seg)
        if include_self_play:
            fit = fit + self._store.take(focal_sids, focal_sids).astype(
                np.float64, copy=False
            )
        k = teachers.shape[0]
        fit = self.xb.to_host(fit)
        return fit[:k], fit[k:]

    # -- invariants ------------------------------------------------------------

    def check_consistent(self, sids: np.ndarray, strategies: list[Strategy]) -> None:
        """Verify one lane's sid row maps back to ``strategies`` — test helper."""
        for i, s in enumerate(strategies):
            pooled = self.strategy(int(sids[i]))
            if pooled.key() != s.key():
                raise SimulationError(
                    f"sid row desynced at SSet {i}: slot {int(sids[i])} "
                    "holds a different strategy"
                )
