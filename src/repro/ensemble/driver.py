"""Lane-batched ensemble driver: a whole sweep as one array program.

:func:`run_ensemble` executes many independent replicates ("lanes") of the
evolutionary dynamics in a single interpreter loop.  Lanes with identical
science (every config field except the seed) are stacked: their populations
live in one ``(R, n_ssets)`` strategy-id array over one shared
:class:`~repro.ensemble.engine.EnsembleEngine` pool/payoff matrix, their
event flags are scanned together, and pairwise-comparison fitness is
evaluated for all of a generation's event lanes in one batched
payoff-matrix reduction — ``counts``-style gathers for well-mixed lanes,
one flat CSR gather + segment reduction over the structure's
``indptr``/``indices`` adjacency for graph lanes
(:meth:`~repro.ensemble.engine.EnsembleEngine.fitness_pc_graph`).  Mutant
payoff rows are prefilled a *window* of generations ahead — mutation draws
are state-independent, so the window's mutants can be drawn and evaluated
in one batched kernel call before their events apply.

**Bit-parity contract.**  Every lane follows the *bit-identical trajectory*
of the same-seed serial :func:`~repro.core.evolution.run_event_driven` run
(pinned by the lane-parity tests): per-lane RNG streams are consumed
through exactly the serial call sequence (``batch_event_flags`` layout for
the events stream, the teacher-then-learner-with-rejection draw of
:meth:`~repro.structure.WellMixed.select_pair` — or the graph structures'
learner-then-neighbor draw, both decoded in bulk off the raw Philox
stream by :mod:`repro.ensemble.rawstream` — plus one adoption uniform for
PC, target + mutant draws for mutation), Fermi decisions use the same
scalar ``math.exp`` path, and shared-matrix fitness values are float-exact
integer sums, hence bitwise equal to the per-run engine's.

Regimes:

* **deterministic** (pure strategies, no noise, integer payoffs, ``engine``
  on) — the shared-engine fast path above.
* **expected** Markov fitness, non-integer payoffs, or ``engine=False`` —
  lanes run with per-lane evaluators (the exact serial objects:
  :class:`~repro.core.engine.FitnessEngine` or the legacy
  :class:`~repro.core.payoff_cache.PayoffCache`), still sharing the merged
  event scan.  The expected regime cannot share one matrix bit-identically
  across lanes — its Markov kernel is not perspective-symmetric in the last
  ulp, so entry values depend on which lane evaluated a pair first.
* **sampled-stochastic** fitness is rejected by default: every game is an
  independent draw from the per-lane games stream, so there is nothing to
  share without changing the trajectory (use the ``event`` backend per
  run).  With the explicit ``sampled_batched=True`` opt-in
  (``--sampled-batched``) lanes instead carry per-lane
  :class:`~repro.core.engine.SampledFitnessEngine` evaluators over
  dedicated ``("nature", "sampled")`` streams, and a generation's event
  lanes are evaluated as **one** fused
  :func:`~repro.core.vectorgame.play_pairs_uniforms` kernel call
  (:meth:`~repro.core.engine.SampledFitnessEngine.eval_plans`) through the
  ``repro.xp`` seam.  Each lane pre-draws its own uniform block, so its
  trajectory is bit-identical to the same-seed serial ``sampled_batched``
  run — and statistically equivalent to the scalar legacy path.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import nullcontext
from typing import Iterable, Sequence

import numpy as np

from ..core.config import EvolutionConfig
from ..core.engine import FitnessEngine, SampledFitnessEngine
from ..core.evolution import (
    EventRecord,
    EvolutionResult,
    Snapshot,
    _enable_capture_logs,
    _maybe_snapshot,
)
from ..core.fermi import fermi_probability
from ..core.payoff_cache import PayoffCache
from ..core.population import Population
from .. import faults
from ..core.progress import (
    ProgressTick,
    cancel_token,
    progress_callback,
    progress_scope,
)
from ..core.runstate import (
    RUN_STATE_VERSION,
    capture_evaluator,
    capture_events,
    capture_population,
    capture_snapshots,
    checkpoint_sink,
    checkpointing_supported,
    decode_bitgen,
    encode_bitgen,
    restore_evaluator,
    restore_events,
    restore_population,
    restore_snapshots,
    unit_key,
    validate_resume_config,
)
from ..core.strategy import Strategy, random_mixed, random_pure
from ..errors import CheckpointError, ConfigurationError
from ..rng import SeedSequenceTree
from ..structure import GraphStructure, InteractionModel, build_structure
from . import rawstream
from .engine import EnsembleEngine, supports_shared_engine

__all__ = ["run_ensemble", "run_ensemble_detailed", "lane_signature"]

#: Target mutants per lane per prefetch window.  Larger windows batch more
#: mutants per kernel call but prefill more pairs that die unqueried;
#: around three per lane balances both, so the window length adapts to the
#: configured mutation rate (64 generations at the paper's mu = 0.05).
_MUTANTS_PER_WINDOW = 3.2


def _fill_window(mutation_rate: float) -> int:
    if mutation_rate <= 0.0:
        return 1024
    return max(32, min(1024, round(_MUTANTS_PER_WINDOW / mutation_rate)))


def lane_signature(config: EvolutionConfig) -> tuple:
    """Grouping key: lanes batch together iff their science is identical
    up to the seed (the standard replicate-ensemble shape).

    Derived from the config's dataclass fields so a future
    :class:`EvolutionConfig` field can never silently fall out of the key
    (which would co-batch configs that differ in it); only the seed is
    excluded, and the two non-hashable fields get canonical stand-ins.
    """
    parts: list = []
    for field in dataclasses.fields(EvolutionConfig):
        if field.name == "seed":
            continue
        value = getattr(config, field.name)
        if field.name == "structure":
            value = (
                ("instance", id(value))
                if isinstance(value, InteractionModel)
                else ("spec", config.canonical_structure())
            )
        elif field.name == "payoff":
            value = tuple(float(v) for v in value.vector)
        parts.append((field.name, value))
    return tuple(parts)


def _validate_config(config: EvolutionConfig) -> None:
    if config.is_stochastic and not config.sampled_batched:
        raise ConfigurationError(
            "the ensemble driver supports deterministic and expected-"
            "fitness configurations only; sampled-stochastic fitness draws "
            "one fresh game per probe from the per-lane games stream and "
            "cannot be lane-batched without changing the trajectory — opt "
            "in to the batched sampled engine with sampled_batched=True "
            "(CLI --sampled-batched; statistically equivalent, not "
            "bit-identical to the scalar path), or use the event or "
            "serial backend per run"
        )


def run_ensemble(
    configs: Iterable[EvolutionConfig],
    populations: Sequence[Population | None] | None = None,
    *,
    batch_size: int = 1 << 16,
    array_backend: str | None = None,
) -> list[EvolutionResult]:
    """Run every config lane-batched; results come back in config order."""
    results, _ = run_ensemble_detailed(
        configs, populations, batch_size=batch_size,
        array_backend=array_backend,
    )
    return results


def run_ensemble_detailed(
    configs: Iterable[EvolutionConfig],
    populations: Sequence[Population | None] | None = None,
    *,
    batch_size: int = 1 << 16,
    array_backend: str | None = None,
) -> tuple[list[EvolutionResult], list[dict]]:
    """:func:`run_ensemble` plus one per-result execution-metadata dict
    (``lanes``, ``shared_engine`` stats, ``array_backend`` provenance) for
    the backend report.

    ``array_backend`` overrides every config's ``array_backend`` field for
    the shared-engine groups (the backend-option precedence of
    :class:`~repro.api.backends.EnsembleBackend`).
    """
    run_configs = list(configs)
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    if populations is None:
        initial: list[Population | None] = [None] * len(run_configs)
    else:
        initial = list(populations)
        if len(initial) != len(run_configs):
            raise ConfigurationError(
                f"got {len(initial)} initial populations for "
                f"{len(run_configs)} configs"
            )
    for config in run_configs:
        _validate_config(config)

    groups: dict[tuple, list[int]] = {}
    for i, config in enumerate(run_configs):
        groups.setdefault(lane_signature(config), []).append(i)

    results: list[EvolutionResult | None] = [None] * len(run_configs)
    metas: list[dict | None] = [None] * len(run_configs)
    # Progress listeners (repro.core.progress) see sweep-level config
    # indices, not lane-local ones: each group's driver emits ticks with
    # its own lane numbering, remapped here through a nested scope.
    outer_progress = progress_callback()
    for indices in groups.values():
        group_configs = [run_configs[i] for i in indices]
        group_initial = [initial[i] for i in indices]
        if outer_progress is not None:
            remap = list(indices)
            scope = progress_scope(
                lambda tick, _remap=remap, _cb=outer_progress: _cb(
                    tick.with_run_index(_remap[tick.run_index])
                )
            )
        else:
            scope = nullcontext()
        # The shared fast path speaks the structure layer's two batched
        # dialects: well-mixed gathers and GraphStructure's CSR adjacency
        # (decoders + fitness_pc_graph).  A custom InteractionModel
        # subclass registered through register_structure implements only
        # the abstract per-event API, so it runs the per-lane generic
        # path (exact serial objects and draws) instead.
        head = group_configs[0]
        structure = build_structure(head.structure, head.n_ssets)
        with scope:
            if supports_shared_engine(head) and (
                structure.is_well_mixed or isinstance(structure, GraphStructure)
            ):
                outs, meta = _run_group_shared(
                    group_configs, group_initial, batch_size,
                    array_backend=array_backend,
                )
            else:
                outs, meta = _run_group_generic(
                    group_configs, group_initial, batch_size
                )
        for i, out in zip(indices, outs):
            results[i] = out
            metas[i] = meta
    return results, metas  # type: ignore[return-value]


def _lane_setup(
    configs: list[EvolutionConfig], initial: list[Population | None]
) -> tuple[list, list, list, list, list[Population]]:
    """Per-lane RNG streams (serial stream layout) and initial populations."""
    trees = [SeedSequenceTree(c.seed) for c in configs]
    events_rngs = [t.generator("nature", "events") for t in trees]
    pc_rngs = [t.generator("nature", "pc") for t in trees]
    mu_rngs = [t.generator("nature", "mutation") for t in trees]
    pops: list[Population] = []
    for r, config in enumerate(configs):
        population = initial[r]
        if population is None:
            population = Population.random(config, trees[r].generator("init"))
        pops.append(population)
    return trees, events_rngs, pc_rngs, mu_rngs, pops


def _draw_flags(
    events_rngs: list, pc_rate: float, mutation_rate: float, batch: int
) -> tuple[np.ndarray, np.ndarray]:
    """One batch of per-lane event flags (NatureAgent.batch_event_flags
    stream layout: two uniforms per generation, PC first)."""
    n_lanes = len(events_rngs)
    pc_flags = np.empty((n_lanes, batch), dtype=bool)
    mu_flags = np.empty((n_lanes, batch), dtype=bool)
    for r in range(n_lanes):
        draws = events_rngs[r].random(2 * batch)
        pc_flags[r] = draws[0::2] < pc_rate
        mu_flags[r] = draws[1::2] < mutation_rate
    return pc_flags, mu_flags


# -- mid-run checkpointing -----------------------------------------------------


def _group_checkpointing(cfg: EvolutionConfig, initial: list):
    """The active checkpoint sink, iff this group is eligible for mid-run
    snapshots (same arming rule as the serial drivers, plus one ensemble
    refusal: an LRU-capped blocked *shared* store can evict filled blocks
    mid-run, so a captured valid-pair set cannot pin the resumed run's
    fill counters to the clean run's)."""
    sink = checkpoint_sink()
    if sink is None:
        return None
    if any(p is not None for p in initial):
        return None
    if not checkpointing_supported(cfg):
        return None
    if cfg.paymat_block > 0 and cfg.engine_pool_cap > 0:
        return None
    return sink


def _lane_arrays(arrays: dict, r: int) -> dict:
    """One lane's arrays, with the ``l{r}_`` namespace prefix stripped."""
    prefix = f"l{r}_"
    return {
        key[len(prefix):]: value
        for key, value in arrays.items()
        if key.startswith(prefix)
    }


def _load_group_state(sink, unit: str, configs: list[EvolutionConfig],
                      mode: str):
    """Newest valid ensemble checkpoint for this group, or ``None``.

    A snapshot of a different kind/mode (say a one-lane sweep that resolved
    to a serial driver earlier) is not an error — the group just starts
    fresh; a science-config mismatch *is* one (the did-you-mean error of
    :func:`~repro.core.runstate.validate_resume_config`)."""
    found = sink.load_latest(unit)
    if found is None:
        return None
    meta, arrays = found
    if meta.get("kind") != "ensemble" or meta.get("mode") != mode:
        return None
    version = int(meta.get("version", 0))
    if version != RUN_STATE_VERSION:
        raise CheckpointError(
            f"run-state checkpoint is format v{version}; this build reads "
            f"v{RUN_STATE_VERSION}"
        )
    validate_resume_config(meta["configs"], [c.to_dict() for c in configs])
    return meta, arrays


def _capture_group_shared(
    configs: list[EvolutionConfig],
    base: int,
    engine: EnsembleEngine,
    pops: list[Population],
    sids: np.ndarray,
    results: list[EvolutionResult],
    next_snap: list,
    events_rngs: list,
    pc_decoders: list,
    mu_decoders: list,
    adopt_counts: np.ndarray,
    mut_counts: np.ndarray,
    n_pc: list[int],
    n_adopt: list[int],
    n_mut: list[int],
) -> tuple[dict, dict]:
    """Snapshot the whole shared-engine group at a batch boundary.

    Population objects are bystanders mid-run (the sid array is the state,
    diffed back into the generation-0 populations at the end), so each lane
    captures its *initial* population plus the strategy tables its sids
    point at now; the shared matrix is captured as the live x live valid
    pair set (table-keyed, sid numbering is ephemeral), re-evaluated
    bit-exactly on resume."""
    lanes: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for r, _config in enumerate(configs):
        pop_meta, lane_arrays = capture_population(pops[r])
        lane_arrays["sid_tables"] = engine.tables[sids[r]].copy()
        lane_arrays["adopt_counts"] = adopt_counts[r].copy()
        lane_arrays["mut_counts"] = mut_counts[r].copy()
        lane_arrays.update(capture_events(results[r].events))
        lane_arrays.update(capture_snapshots(results[r].snapshots))
        lanes.append(
            {
                "population": pop_meta,
                "counters": {
                    "n_pc_events": int(n_pc[r]),
                    "n_adoptions": int(n_adopt[r]),
                    "n_mutations": int(n_mut[r]),
                },
                "next_snapshot": next_snap[r],
                "events_rng": encode_bitgen(
                    events_rngs[r].bit_generator.state
                ),
                "pc_stream": pc_decoders[r].state_dict(),
                "mu_stream": mu_decoders[r].state_dict(),
            }
        )
        for key, value in lane_arrays.items():
            arrays[f"l{r}_{key}"] = value
    # Every live slot is some lane's member at a batch boundary (prefetch
    # pins are released), so live x live covers the whole forward-reachable
    # valid set; dead strategies re-enter through fresh slots and refill.
    live = np.unique(sids)
    valid = np.asarray(
        engine.xb.to_host(
            engine._store.pair_valid(live[:, None], live[None, :])
        )
    )
    pair_i, pair_j = np.nonzero(np.triu(valid))
    arrays["engine_live_tables"] = engine.tables[live].copy()
    arrays["engine_pair_a"] = pair_i.astype(np.int64)
    arrays["engine_pair_b"] = pair_j.astype(np.int64)
    arrays["engine_lane_fills"] = engine.lane_fills.copy()
    meta = {
        "version": RUN_STATE_VERSION,
        "kind": "ensemble",
        "mode": "shared",
        "generation": int(base),
        "configs": [c.to_dict() for c in configs],
        "lanes": lanes,
        "engine": {
            "fills": int(engine.fills),
            "fill_calls": int(engine.fill_calls),
        },
    }
    return meta, arrays


def _capture_group_generic(
    configs: list[EvolutionConfig],
    base: int,
    pops: list[Population],
    evaluators: list,
    results: list[EvolutionResult],
    next_snap: list,
    events_rngs: list,
    pc_rngs: list,
    mu_rngs: list,
) -> tuple[dict, dict]:
    """Snapshot one per-lane-evaluator group at a batch boundary (current
    populations, each lane's evaluator state, and all three scalar RNG
    stream positions)."""
    lanes: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for r, _config in enumerate(configs):
        pop_meta, lane_arrays = capture_population(pops[r])
        eval_meta, eval_arrays = capture_evaluator(evaluators[r], pops[r])
        lane_arrays.update(eval_arrays)
        lane_arrays.update(capture_events(results[r].events))
        lane_arrays.update(capture_snapshots(results[r].snapshots))
        lanes.append(
            {
                "population": pop_meta,
                "evaluator": eval_meta,
                "counters": {
                    "n_pc_events": int(results[r].n_pc_events),
                    "n_adoptions": int(results[r].n_adoptions),
                    "n_mutations": int(results[r].n_mutations),
                },
                "next_snapshot": next_snap[r],
                "events_rng": encode_bitgen(
                    events_rngs[r].bit_generator.state
                ),
                "pc_rng": encode_bitgen(pc_rngs[r].bit_generator.state),
                "mu_rng": encode_bitgen(mu_rngs[r].bit_generator.state),
            }
        )
        for key, value in lane_arrays.items():
            arrays[f"l{r}_{key}"] = value
    meta = {
        "version": RUN_STATE_VERSION,
        "kind": "ensemble",
        "mode": "generic",
        "generation": int(base),
        "configs": [c.to_dict() for c in configs],
        "lanes": lanes,
        "engine": None,
    }
    return meta, arrays


# -- shared deterministic engine path -----------------------------------------


def _run_group_shared(
    configs: list[EvolutionConfig],
    initial: list[Population | None],
    batch_size: int,
    array_backend: str | None = None,
) -> tuple[list[EvolutionResult], dict]:
    """Advance one signature-group of deterministic lanes over the shared
    engine, generation by generation."""
    started = time.perf_counter()
    cfg = configs[0]
    n_lanes = len(configs)
    n_ssets = cfg.n_ssets
    generations = cfg.generations
    structure = build_structure(cfg.structure, n_ssets)
    well_mixed = structure.is_well_mixed

    _, events_rngs, pc_rngs, mu_rngs, pops = _lane_setup(configs, initial)

    sink = _group_checkpointing(cfg, initial)
    unit = (
        unit_key([c.to_dict() for c in configs]) if sink is not None else None
    )
    restored = (
        _load_group_state(sink, unit, configs, "shared")
        if sink is not None
        else None
    )
    save_every = cfg.checkpoint_every if sink is not None else 0
    start_gen = 0
    lane_state: list[dict] = []
    if restored is not None:
        meta_r, arrays_r = restored
        start_gen = int(meta_r["generation"])
        lane_state = [_lane_arrays(arrays_r, r) for r in range(n_lanes)]
        for r in range(n_lanes):
            pops[r] = restore_population(
                meta_r["lanes"][r]["population"], lane_state[r]
            )

    # Size for the worst case (every SSet distinct) plus prefetch-pin
    # headroom up front: growth doubles the dense matrix, so a big ensemble
    # that barely overflows would pay double the memory.  Memory-one's
    # strategy space (16 pure tables) caps the pool outright.
    n_states = 4 ** cfg.memory_steps
    capacity = n_lanes * n_ssets + 512
    if n_states < 32:
        capacity = min(capacity, 2**n_states)
    engine = EnsembleEngine(
        cfg.memory_steps,
        cfg.rounds,
        cfg.payoff,
        n_lanes=n_lanes,
        capacity=capacity,
        paymat_block=cfg.paymat_block,
        block_cap=cfg.engine_pool_cap if cfg.paymat_block else 0,
        array_backend=array_backend or cfg.array_backend,
    )
    # Well-mixed shallow memories (cheap pairs) prefill every pair a
    # window could read, so the hot loop runs check-free; deep memories
    # (4**n >= 64 states, ~4x the kernel cost per pair) evaluate on demand
    # instead — there the prefetch's mutant x live overshoot costs more
    # than the per-generation check-and-fill it avoids.  Graph lanes are
    # *always* on demand: a fitness gather reads only the 2k event
    # neighborhoods (O(degree) pairs), a tiny fraction of the mutant x
    # live-population coverage the invariant would prefill, so the
    # check-and-fill inside fitness_pc_graph is the cheaper side at every
    # memory depth (measured: 64-lane ring m1/m2 both faster on demand).
    # An LRU-capped blocked paymat can evict filled blocks mid-run, which
    # breaks the fill-once coverage invariant — those runs always take the
    # on-demand check-and-fill path (refills are bit-exact, so the
    # trajectory is unchanged; only fill counts differ).
    full_cover = n_states <= 16 and well_mixed and not engine.evictable
    sids = np.empty((n_lanes, n_ssets), dtype=np.int64)
    for r in range(n_lanes):
        # Population objects are bystanders during the shared-mode run (the
        # sid array is the state); drop any stale per-run engine binding so
        # the final write-back goes through the plain histogram path.  On
        # resume the lanes' *current* strategies come from the snapshot's
        # table capture, not the (generation-0) population.
        pops[r].bind_engine(None)
        if restored is not None:
            sids[r] = engine.intern_lane(
                [
                    Strategy._trusted(np.array(row), cfg.memory_steps)
                    for row in lane_state[r]["sid_tables"]
                ]
            )
        else:
            sids[r] = engine.intern_lane(pops[r].strategies())
    if restored is not None:
        # Refill the snapshot's live x live valid-pair set (bit-exact — the
        # kernel is order-independent for these integer/compact sums) and
        # pin the counters to the interrupted run's, so the resumed run's
        # provenance matches an uninterrupted one.  Every captured live
        # table was re-interned just above, so the key lookup cannot miss.
        live_new = np.array(
            [
                engine._ids[
                    Strategy._trusted(np.array(row), cfg.memory_steps).key()
                ]
                for row in arrays_r["engine_live_tables"]
            ],
            dtype=np.int64,
        )
        pair_a = np.asarray(arrays_r["engine_pair_a"])
        pair_b = np.asarray(arrays_r["engine_pair_b"])
        if pair_a.shape[0]:
            engine._fill_pairs(live_new[pair_a], live_new[pair_b])
        engine.fills = int(meta_r["engine"]["fills"])
        engine.fill_calls = int(meta_r["engine"]["fill_calls"])
        engine.lane_fills[:] = np.asarray(arrays_r["engine_lane_fills"])
    elif full_cover:
        # Initial coverage: every within-lane pair (diagonal included) is
        # evaluated up front, deduplicated across lanes.  Together with the
        # window prefetch below this establishes the standing invariant
        # that every pair a fitness gather can read is valid — a pair's
        # two members either coexisted at t=0 (covered here) or the
        # younger entered by mutation with the older live or arriving in
        # the same window (covered by its window's prefetch), and slots
        # recycle only when a strategy leaves every lane — so the hot loop
        # needs no per-query checks.
        a_init: list[np.ndarray] = []
        b_init: list[np.ndarray] = []
        lanes_init: list[np.ndarray] = []
        for r in range(n_lanes):
            uniq = np.unique(sids[r])
            iu, ju = np.triu_indices(uniq.shape[0])
            a_init.append(uniq[iu])
            b_init.append(uniq[ju])
            lanes_init.append(np.full(iu.shape[0], r, dtype=np.int64))
        engine.fill_missing(
            np.concatenate(a_init), np.concatenate(b_init),
            np.concatenate(lanes_init),
        )
        del a_init, b_init, lanes_init

    results = [
        EvolutionResult(config=config, population=population)
        for config, population in zip(configs, pops)
    ]
    if restored is None:
        for result, population in zip(results, pops):
            _maybe_snapshot(result, population, 0, force=True)

    every = cfg.record_every
    next_snap: list[int | None] = [every if every > 0 else None] * n_lanes
    include_self = cfg.include_self_play
    downhill = cfg.allow_downhill_learning
    beta = cfg.beta
    record_events = cfg.record_events
    memory = cfg.memory_steps
    progress = progress_callback()
    cancel = cancel_token()
    fault = faults.hook("driver.generation")

    # Per-lane decision-stream pre-draw (see repro.ensemble.rawstream):
    # PC selections and mutations are state-independent, so each batch's
    # draws happen up front — vectorised straight off the Philox raw
    # stream when the primitives verify, through the ordinary Generator
    # calls otherwise — and the event loop just walks cursors.  Graph
    # structures decode their learner-then-neighbor select_pair order
    # (teacher resolved through the CSR adjacency inside the decoder).
    if well_mixed:
        pc_decoders = [
            rawstream.pc_decoder(pc_rngs[r], n_ssets) for r in range(n_lanes)
        ]
    else:
        pc_decoders = [
            rawstream.graph_pc_decoder(pc_rngs[r], structure)
            for r in range(n_lanes)
        ]
    mu_decoders = [
        rawstream.mutation_decoder(mu_rngs[r], n_ssets, n_states)
        for r in range(n_lanes)
    ]

    # Population state lives in the sid array during the run; SSet-level
    # bookkeeping is tracked in arrays and written back at the end.
    adopt_counts = np.zeros((n_lanes, n_ssets), dtype=np.int64)
    mut_counts = np.zeros((n_lanes, n_ssets), dtype=np.int64)
    n_pc = [0] * n_lanes
    n_adopt = [0] * n_lanes
    n_mut = [0] * n_lanes
    event_lists = [result.events for result in results]
    if restored is not None:
        for r in range(n_lanes):
            lane_meta = meta_r["lanes"][r]
            state = lane_state[r]
            results[r].events.extend(restore_events(state))
            results[r].snapshots.extend(restore_snapshots(state))
            results[r].resumed_from_generation = start_gen
            counters = lane_meta["counters"]
            n_pc[r] = int(counters["n_pc_events"])
            n_adopt[r] = int(counters["n_adoptions"])
            n_mut[r] = int(counters["n_mutations"])
            adopt_counts[r] = np.asarray(state["adopt_counts"])
            mut_counts[r] = np.asarray(state["mut_counts"])
            pending = lane_meta["next_snapshot"]
            next_snap[r] = None if pending is None else int(pending)
            events_rngs[r].bit_generator.state = decode_bitgen(
                lane_meta["events_rng"]
            )
            pc_decoders[r].set_state(lane_meta["pc_stream"])
            mu_decoders[r].set_state(lane_meta["mu_stream"])
    # Reference counts are plain list ops inlined below (engine.recycle
    # handles the rare zero).  _grow() extends this list in place; only
    # compact() replaces it, and the alias is refreshed there.
    refs = engine._refs
    rows_all = np.arange(n_lanes)

    base = start_gen
    remaining = generations - start_gen
    while remaining > 0:
        batch = min(batch_size, remaining)
        # A nonzero cadence aligns batch edges to its multiples whether or
        # not a sink is armed: the prefetch-window grouping below restarts
        # per batch and steers fill attribution, so clean and resumed runs
        # of the same config must split batches identically for the fill
        # counters to match (the trajectory itself is split-independent).
        if cfg.checkpoint_every > 0:
            batch = min(
                batch, cfg.checkpoint_every - base % cfg.checkpoint_every
            )
        pc_flags, mu_flags = _draw_flags(
            events_rngs, cfg.pc_rate, cfg.mutation_rate, batch
        )
        # Event (generation, lane) pairs sorted by generation; the merged
        # pointer walk below visits each event generation once.
        pc_gen_arr, pc_lane_arr = np.nonzero(pc_flags.T)
        mu_gen_arr, mu_lane_arr = np.nonzero(mu_flags.T)
        pc_gen = pc_gen_arr.tolist()
        pc_lane = pc_lane_arr.tolist()
        mu_gen = mu_gen_arr.tolist()
        mu_lane = mu_lane_arr.tolist()
        pi, mi = 0, 0
        n_pc_ev, n_mu_ev = len(pc_gen), len(mu_gen)
        window = _fill_window(cfg.mutation_rate)

        # Pre-draw the whole batch's decisions per lane (exact serial
        # stream consumption; see module docstring of rawstream).
        mu_counts = np.count_nonzero(mu_flags, axis=1)
        mu_targets: list[list[int]] = []
        mu_tables: list[np.ndarray] = []
        for r in range(n_lanes):
            targets_r, tables_r = mu_decoders[r].draw(int(mu_counts[r]))
            mu_targets.append(targets_r)
            mu_tables.append(tables_r)
        mu_cur = [0] * n_lanes
        pc_counts = np.count_nonzero(pc_flags, axis=1)
        pc_teachers: list[list[int]] = []
        pc_learners: list[list[int]] = []
        pc_uniforms: list[list[float]] = []
        for r in range(n_lanes):
            t_r, l_r, u_r = pc_decoders[r].draw(int(pc_counts[r]))
            pc_teachers.append(t_r)
            pc_learners.append(l_r)
            pc_uniforms.append(u_r)
        pc_cur = [0] * n_lanes
        for w_lo in range(0, batch, window):
            w_hi = min(w_lo + window, batch)
            p_end = pi
            while p_end < n_pc_ev and pc_gen[p_end] < w_hi:
                p_end += 1
            m_end = mi
            while m_end < n_mu_ev and mu_gen[m_end] < w_hi:
                m_end += 1
            if p_end == pi and m_end == mi:
                continue

            # The ensemble's initial populations intern thousands of
            # mostly-distinct random strategies; once selection has thinned
            # them out, re-pack the matrix so fitness gathers stay hot.
            # Safe here: no prefetch pins are outstanding.
            mapping = engine.compact()
            if mapping is not None:
                sids = mapping[sids]
                refs = engine._refs

            # Window prefetch: mutation draws are state-independent (the
            # mutation stream is consumed only at mutation events, in
            # generation order — exactly how we walk them here), so the
            # window's mutants can be drawn, interned, and their payoff
            # rows filled in ONE batched kernel call instead of one small
            # fill per generation.  Pinning (an extra reference until the
            # window ends) keeps their slots — and any dead strategy they
            # resurrect — from being recycled before their events apply,
            # which also guarantees no slot is re-tenanted mid-window.
            prepped: list[tuple[int, Strategy, int]] = []
            pins: list[int] = []
            if m_end > mi:
                lane_mutants: dict[int, list[int]] = {}
                for idx in range(mi, m_end):
                    r = mu_lane[idx]
                    j = mu_cur[r]
                    mu_cur[r] = j + 1
                    target = mu_targets[r][j]
                    strategy = Strategy._trusted(mu_tables[r][j], memory)
                    sid = engine.acquire(strategy)
                    pins.append(sid)
                    prepped.append((target, strategy, sid))
                    lane_mutants.setdefault(r, []).append(sid)
                if full_cover:
                    a_parts: list[np.ndarray] = []
                    b_parts: list[np.ndarray] = []
                    lane_parts: list[np.ndarray] = []
                    for r, mutant_sids in lane_mutants.items():
                        mutants = np.asarray(mutant_sids, dtype=np.int64)
                        # Everything a window event can pair a mutant with
                        # is live now or is itself a window mutant of this
                        # lane.
                        union = np.unique(np.concatenate((sids[r], mutants)))
                        a_parts.append(np.repeat(mutants, union.shape[0]))
                        b_parts.append(np.tile(union, mutants.shape[0]))
                        lane_parts.append(
                            np.full(
                                mutants.shape[0] * union.shape[0], r,
                                dtype=np.int64,
                            )
                        )
                    engine.fill_missing(
                        np.concatenate(a_parts),
                        np.concatenate(b_parts),
                        np.concatenate(lane_parts),
                    )
            pre_idx = 0

            while pi < p_end or mi < m_end:
                off_p = pc_gen[pi] if pi < p_end else batch
                off_m = mu_gen[mi] if mi < m_end else batch
                off = off_p if off_p <= off_m else off_m
                gen = base + off
                pj = pi
                while pj < p_end and pc_gen[pj] == off:
                    pj += 1
                mj = mi
                while mj < m_end and mu_gen[mj] == off:
                    mj += 1
                pc_lanes = pc_lane[pi:pj]
                pc_lanes_np = pc_lane_arr[pi:pj]
                mu_lanes = mu_lane[mi:mj]
                pi, mi = pj, mj

                # Tick-cadence cancellation: a cancelled/timed-out group
                # aborts before this generation's events apply (the group's
                # results are discarded wholesale, so mid-window engine
                # state needs no unwinding).
                if cancel is not None:
                    cancel.check()
                if fault is not None:
                    fault(generation=gen)

                if every > 0:
                    # The serial driver snapshots after applying a
                    # generation's events; per lane, emit pending snapshots
                    # strictly before this event generation (state is
                    # unchanged in between).
                    for r in set(pc_lanes) | set(mu_lanes):
                        pending = next_snap[r]
                        while pending is not None and pending < gen:
                            if pending < generations:
                                _snapshot_lane(
                                    results[r], engine, sids[r], pending
                                )
                            pending += every
                        next_snap[r] = pending

                k = len(pc_lanes)
                if k:
                    teachers = [0] * k
                    learners = [0] * k
                    uniforms = [0.0] * k
                    for i, r in enumerate(pc_lanes):
                        j = pc_cur[r]
                        pc_cur[r] = j + 1
                        teachers[i] = pc_teachers[r][j]
                        learners[i] = pc_learners[r][j]
                        uniforms[i] = pc_uniforms[r][j]
                    if well_mixed:
                        lane_block = sids[pc_lanes_np]
                        rows = rows_all[:k]
                        sid_t = lane_block[rows, teachers]
                        sid_l = lane_block[rows, learners]
                        if not full_cover:
                            engine.ensure_rows(
                                np.concatenate((sid_t, sid_l)),
                                np.concatenate((lane_block, lane_block)),
                                np.concatenate((pc_lanes_np, pc_lanes_np)),
                            )
                        # (With full_cover every gathered pair is valid by
                        # the coverage invariant: initial fill + window
                        # prefetch.)
                        fit_t, fit_l = engine.fitness_pc_well_mixed(
                            lane_block, sid_t, sid_l, include_self
                        )
                    else:
                        # Graph lanes: the generation's event lanes share
                        # one flat CSR gather + segment reduction (and, in
                        # the deep-memory regime, one batched fill of every
                        # pair the gather will read).
                        t_nodes = np.asarray(teachers, dtype=np.int64)
                        l_nodes = np.asarray(learners, dtype=np.int64)
                        sid_t = sids[pc_lanes_np, t_nodes]
                        sid_l = sids[pc_lanes_np, l_nodes]
                        fit_t, fit_l = engine.fitness_pc_graph(
                            sids,
                            pc_lanes_np,
                            t_nodes,
                            l_nodes,
                            structure,
                            include_self,
                            ensure=not full_cover,
                        )
                    for i, r in enumerate(pc_lanes):
                        ft = fit_t[i]
                        fl = fit_l[i]
                        if not downhill and not ft > fl:
                            adopted = False
                        else:
                            adopted = uniforms[i] < fermi_probability(
                                ft, fl, beta
                            )
                        if adopted:
                            learner = learners[i]
                            new_sid = int(sid_t[i])
                            old_sid = int(sid_l[i])
                            refs[new_sid] += 1
                            sids[r, learner] = new_sid
                            left = refs[old_sid] - 1
                            refs[old_sid] = left
                            if left == 0:
                                engine.recycle(old_sid)
                            adopt_counts[r, learner] += 1
                        n_pc[r] += 1
                        n_adopt[r] += adopted
                        if record_events:
                            event_lists[r].append(
                                EventRecord(
                                    generation=gen,
                                    kind="pc",
                                    source=teachers[i],
                                    target=learners[i],
                                    applied=adopted,
                                    teacher_fitness=ft,
                                    learner_fitness=fl,
                                )
                            )

                for r in mu_lanes:
                    target, strategy, new_sid = prepped[pre_idx]
                    pre_idx += 1
                    refs[new_sid] += 1
                    old_sid = int(sids[r, target])
                    sids[r, target] = new_sid
                    left = refs[old_sid] - 1
                    refs[old_sid] = left
                    if left == 0:
                        engine.recycle(old_sid)
                    mut_counts[r, target] += 1
                    n_mut[r] += 1
                    if record_events:
                        event_lists[r].append(
                            EventRecord(
                                generation=gen,
                                kind="mutation",
                                source=target,
                                target=target,
                                applied=True,
                            )
                        )

                if progress is not None:
                    # One tick per (lane, event generation) — the serial
                    # drivers' cadence, so tick streams match across
                    # backends (pinned by the ensemble-hook tests).
                    for r in sorted(set(pc_lanes) | set(mu_lanes)):
                        progress(
                            ProgressTick(
                                run_index=r,
                                generation=gen,
                                generations=generations,
                                n_pc_events=n_pc[r],
                                n_adoptions=n_adopt[r],
                                n_mutations=n_mut[r],
                            )
                        )

                if every > 0:
                    for r in set(pc_lanes) | set(mu_lanes):
                        if next_snap[r] == gen:
                            if gen < generations:
                                _snapshot_lane(
                                    results[r], engine, sids[r], gen
                                )
                            next_snap[r] = gen + every

            for sid in pins:
                engine.release(sid)
        base += batch
        remaining -= batch
        if (
            save_every > 0
            and base % save_every == 0
            and 0 < base < generations
        ):
            # Flush snapshots due strictly before the boundary first (lane
            # state is unchanged since their generation), so the snapshot
            # list rides along in the capture.
            for r in range(n_lanes):
                pending = next_snap[r]
                while pending is not None and pending < base:
                    if pending < generations:
                        _snapshot_lane(results[r], engine, sids[r], pending)
                    pending += every
                next_snap[r] = pending
            meta_save, arrays_save = _capture_group_shared(
                configs, base, engine, pops, sids, results, next_snap,
                events_rngs, pc_decoders, mu_decoders, adopt_counts,
                mut_counts, n_pc, n_adopt, n_mut,
            )
            sink.save(unit, base, meta_save, arrays_save)

    # Snapshots scheduled after each lane's last event.
    for r in range(n_lanes):
        pending = next_snap[r]
        while pending is not None and pending < generations:
            _snapshot_lane(results[r], engine, sids[r], pending)
            pending += every
        next_snap[r] = pending

    elapsed = time.perf_counter() - started
    for r, result in enumerate(results):
        population = pops[r]
        lane_sids = sids[r]
        for i in range(n_ssets):
            final = engine.strategy(int(lane_sids[i]))
            sset = population.ssets[i]
            if sset.strategy.key() != final.key():
                population.set_strategy(i, final)
            sset.adoptions += int(adopt_counts[r, i])
            sset.mutations += int(mut_counts[r, i])
        result.n_pc_events = n_pc[r]
        result.n_adoptions = n_adopt[r]
        result.n_mutations = n_mut[r]
        result.generations_run = generations
        _maybe_snapshot(result, population, generations, force=True)
        # Mirror the per-run engine's accounting: two dense fitness queries
        # per PC event; pair evaluations attributed to the lane whose
        # demand triggered them (cross-lane reuse means the ensemble
        # evaluates strictly fewer pairs than R serial runs).
        result.cache_hits = 2 * n_pc[r]
        result.cache_misses = int(engine.lane_fills[r])
        # One fused array program: the group's wallclock is indivisible,
        # so every lane reports it (the backend report carries lane count).
        result.wallclock_seconds = elapsed
    meta = {
        "lanes": n_lanes,
        "shared_engine": engine.stats(),
        "array_backend": engine.xb.describe(),
    }
    return results, meta


def _snapshot_lane(
    result: EvolutionResult,
    engine: EnsembleEngine,
    lane_sids: np.ndarray,
    generation: int,
) -> None:
    """Serial-equivalent Snapshot straight from the shared-engine state
    (the strategy raster is a table gather; the dominant share only needs
    the maximum multiset count, so sid ties don't matter)."""
    counts = np.bincount(lane_sids)
    result.snapshots.append(
        Snapshot(
            generation=generation,
            strategy_matrix=engine.tables[lane_sids],
            dominant_share=int(counts.max()) / lane_sids.shape[0],
        )
    )


# -- per-lane evaluator path ---------------------------------------------------


def _run_group_generic(
    configs: list[EvolutionConfig],
    initial: list[Population | None],
    batch_size: int,
) -> tuple[list[EvolutionResult], dict]:
    """Advance one signature-group of lanes with per-lane evaluators (the
    expected-fitness regime, non-integer payoffs, and ``engine=False``),
    sharing only the merged event scan.

    Opt-in ``sampled_batched`` lanes additionally share the sampled-game
    kernel: a generation's event lanes collect their plans and evaluate
    them as one fused :meth:`SampledFitnessEngine.eval_plans` call — each
    lane's uniform block comes off its own dedicated stream, so every
    lane stays bit-identical to its same-seed serial run.
    """
    started = time.perf_counter()
    cfg = configs[0]
    n_lanes = len(configs)
    n_ssets = cfg.n_ssets
    generations = cfg.generations
    structure = build_structure(cfg.structure, n_ssets)
    sampled_mode = cfg.sampled_batched and cfg.is_stochastic

    trees, events_rngs, pc_rngs, mu_rngs, pops = _lane_setup(configs, initial)

    sink = _group_checkpointing(cfg, initial)
    unit = (
        unit_key([c.to_dict() for c in configs]) if sink is not None else None
    )
    restored = (
        _load_group_state(sink, unit, configs, "generic")
        if sink is not None
        else None
    )
    save_every = cfg.checkpoint_every if sink is not None else 0
    start_gen = 0
    lane_state: list[dict] = []
    evaluators: list[FitnessEngine | PayoffCache] = []
    if restored is not None:
        meta_r, arrays_r = restored
        start_gen = int(meta_r["generation"])
        lane_state = [_lane_arrays(arrays_r, r) for r in range(n_lanes)]
        for r, config in enumerate(configs):
            lane_meta = meta_r["lanes"][r]
            pops[r] = restore_population(
                lane_meta["population"], lane_state[r]
            )
            evaluators.append(
                restore_evaluator(
                    config, lane_meta["evaluator"], lane_state[r],
                    pops[r], None,
                )
            )
    else:
        for r, config in enumerate(configs):
            if sampled_mode:
                pops[r].bind_engine(None)
                evaluators.append(
                    SampledFitnessEngine.from_config(
                        config, trees[r].generator("nature", "sampled")
                    )
                )
            else:
                lane_engine = FitnessEngine.from_config(config)
                pops[r].bind_engine(lane_engine)
                evaluators.append(
                    lane_engine
                    if lane_engine is not None
                    else PayoffCache(
                        rounds=config.rounds,
                        payoff=config.payoff,
                        noise=config.noise,
                        rng=None,
                        expected=config.expected_fitness,
                    )
                )
            if sink is not None:
                _enable_capture_logs(evaluators[r])

    results = [
        EvolutionResult(config=config, population=population)
        for config, population in zip(configs, pops)
    ]
    if restored is None:
        for result, population in zip(results, pops):
            _maybe_snapshot(result, population, 0, force=True)

    every = cfg.record_every
    next_snap: list[int | None] = [every if every > 0 else None] * n_lanes
    include_self = cfg.include_self_play
    downhill = cfg.allow_downhill_learning
    beta = cfg.beta
    record_events = cfg.record_events
    make_mutant = random_mixed if cfg.mixed_strategies else random_pure
    memory = cfg.memory_steps
    progress = progress_callback()
    cancel = cancel_token()
    fault = faults.hook("driver.generation")

    if restored is not None:
        for r in range(n_lanes):
            lane_meta = meta_r["lanes"][r]
            state = lane_state[r]
            results[r].events.extend(restore_events(state))
            results[r].snapshots.extend(restore_snapshots(state))
            results[r].resumed_from_generation = start_gen
            counters = lane_meta["counters"]
            results[r].n_pc_events = int(counters["n_pc_events"])
            results[r].n_adoptions = int(counters["n_adoptions"])
            results[r].n_mutations = int(counters["n_mutations"])
            pending = lane_meta["next_snapshot"]
            next_snap[r] = None if pending is None else int(pending)
            events_rngs[r].bit_generator.state = decode_bitgen(
                lane_meta["events_rng"]
            )
            pc_rngs[r].bit_generator.state = decode_bitgen(
                lane_meta["pc_rng"]
            )
            mu_rngs[r].bit_generator.state = decode_bitgen(
                lane_meta["mu_rng"]
            )

    base = start_gen
    remaining = generations - start_gen
    while remaining > 0:
        batch = min(batch_size, remaining)
        if save_every > 0:
            batch = min(batch, save_every - base % save_every)
        pc_flags, mu_flags = _draw_flags(
            events_rngs, cfg.pc_rate, cfg.mutation_rate, batch
        )
        event_cols = np.nonzero((pc_flags | mu_flags).any(axis=0))[0]
        for col in event_cols.tolist():
            gen = base + col
            if cancel is not None:
                cancel.check()
            if fault is not None:
                fault(generation=gen)
            pc_lanes = np.flatnonzero(pc_flags[:, col]).tolist()
            mu_lanes = np.flatnonzero(mu_flags[:, col]).tolist()
            if every > 0:
                for r in set(pc_lanes) | set(mu_lanes):
                    pending = next_snap[r]
                    while pending is not None and pending < gen:
                        if pending < generations:
                            _maybe_snapshot(
                                results[r], pops[r], pending, force=True
                            )
                        pending += every
                    next_snap[r] = pending

            # Draw every event lane's PC selection first (each lane has its
            # own pc stream, so the draw/evaluate interleaving across lanes
            # is trajectory-neutral), then evaluate fitness: per lane for
            # the legacy evaluators, or — in sampled_batched mode — all
            # lanes' sampled games fused into one kernel call, each lane's
            # uniform block drawn from its own dedicated stream.
            drawn: list[tuple[int, int, int, float]] = []
            for r in pc_lanes:
                rng = pc_rngs[r]
                teacher, learner = structure.select_pair(rng)
                drawn.append((r, teacher, learner, float(rng.random())))
            if sampled_mode and drawn:
                fits = SampledFitnessEngine.eval_plans(
                    [
                        (
                            evaluators[r],
                            evaluators[r].pc_plan(
                                pops[r], structure, teacher, learner,
                                include_self,
                            ),
                        )
                        for r, teacher, learner, _ in drawn
                    ]
                )
            else:
                fits = [
                    structure.pair_fitness(
                        pops[r], teacher, learner, evaluators[r],
                        include_self,
                    )
                    for r, teacher, learner, _ in drawn
                ]
            for (r, teacher, learner, uniform), (ft, fl) in zip(drawn, fits):
                if not downhill and not ft > fl:
                    adopted = False
                else:
                    adopted = uniform < fermi_probability(ft, fl, beta)
                if adopted:
                    pops[r].adopt(learner, pops[r][teacher].strategy)
                result = results[r]
                result.n_pc_events += 1
                result.n_adoptions += int(adopted)
                if record_events:
                    result.events.append(
                        EventRecord(
                            generation=gen,
                            kind="pc",
                            source=teacher,
                            target=learner,
                            applied=adopted,
                            teacher_fitness=ft,
                            learner_fitness=fl,
                        )
                    )

            for r in mu_lanes:
                rng = mu_rngs[r]
                target = int(rng.integers(n_ssets))
                strategy = make_mutant(rng, memory)
                pops[r].mutate(target, strategy)
                result = results[r]
                result.n_mutations += 1
                if record_events:
                    result.events.append(
                        EventRecord(
                            generation=gen,
                            kind="mutation",
                            source=target,
                            target=target,
                            applied=True,
                        )
                    )

            if progress is not None:
                for r in sorted(set(pc_lanes) | set(mu_lanes)):
                    result = results[r]
                    progress(
                        ProgressTick(
                            run_index=r,
                            generation=gen,
                            generations=generations,
                            n_pc_events=result.n_pc_events,
                            n_adoptions=result.n_adoptions,
                            n_mutations=result.n_mutations,
                        )
                    )

            if every > 0:
                for r in set(pc_lanes) | set(mu_lanes):
                    if next_snap[r] == gen:
                        if gen < generations:
                            _maybe_snapshot(results[r], pops[r], gen, force=True)
                        next_snap[r] = gen + every
        base += batch
        remaining -= batch
        if (
            save_every > 0
            and base % save_every == 0
            and 0 < base < generations
        ):
            for r in range(n_lanes):
                pending = next_snap[r]
                while pending is not None and pending < base:
                    if pending < generations:
                        _maybe_snapshot(
                            results[r], pops[r], pending, force=True
                        )
                    pending += every
                next_snap[r] = pending
            meta_save, arrays_save = _capture_group_generic(
                configs, base, pops, evaluators, results, next_snap,
                events_rngs, pc_rngs, mu_rngs,
            )
            sink.save(unit, base, meta_save, arrays_save)

    for r in range(n_lanes):
        pending = next_snap[r]
        while pending is not None and pending < generations:
            _maybe_snapshot(results[r], pops[r], pending, force=True)
            pending += every
        next_snap[r] = pending

    elapsed = time.perf_counter() - started
    for r, result in enumerate(results):
        result.generations_run = generations
        _maybe_snapshot(result, pops[r], generations, force=True)
        result.cache_hits = evaluators[r].hits
        result.cache_misses = evaluators[r].misses
        result.wallclock_seconds = elapsed
    meta = {"lanes": n_lanes, "shared_engine": None, "array_backend": None}
    if sampled_mode:
        meta["array_backend"] = evaluators[0].xb.describe()
        meta["sampled"] = {
            "games_played": int(
                sum(e.games_played for e in evaluators)
            ),
            "batches": int(sum(e.batches for e in evaluators)),
        }
    return results, meta
