"""Exact vectorised pre-draw of per-lane Nature-Agent decision streams.

The pairwise-comparison and mutation streams are *state-independent*: which
SSets an event touches and which mutant table it installs depend only on
the drawn values, never on the population.  A lane's whole batch of
decisions can therefore be drawn ahead of time — the only requirement is
that the RNG stream is consumed **exactly** as the serial drivers consume
it, call for call.

NumPy's ``Generator`` draws these values through a handful of stable
primitives on the Philox raw uint64 stream:

* ``random()`` — one raw word: ``(raw >> 11) * 2**-53``;
* ``integers(n)`` with ``n < 2**32`` — Lemire's multiply-shift on 32-bit
  halves, low half first, with a *persistent* half-word carry between
  calls: ``value = (u32 * n) >> 32``.  For power-of-two ``n`` the
  rejection threshold is zero, so every draw consumes exactly one half;
* ``integers(0, 2, size=S, dtype=uint8)`` — one byte per element
  (little-endian within each 32-bit half): ``value = byte >> 7``.

This module re-implements those primitives vectorised over a *clone* of
the bit generator (peek), then advances the real generator by exactly the
number of raw words consumed (commit).  Decoding is only enabled when

* the bound is a power of two (rejection-free Lemire), and
* a start-up self-check against the real ``Generator`` API passes —
  so a future NumPy that changes its bounded-integer algorithm degrades
  this module to the scalar path instead of silently changing
  trajectories (the lane-parity tests pin the trajectories regardless).

The scalar fallbacks produce identical arrays through the ordinary
``Generator`` calls, so callers see one interface either way.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pc_decoder",
    "mutation_decoder",
    "raw_decoding_supported",
]

_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_SHIFT11 = np.uint64(11)
_DOUBLE_SCALE = 1.0 / (1 << 53)


def _is_pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


class _RawPeek:
    """Read ahead on a cloned Philox; commit consumption at the end."""

    def __init__(self, bit_generator):
        clone = np.random.Philox()
        clone.state = bit_generator.state
        self._clone = clone
        self._real = bit_generator
        self._buf = np.empty(0, dtype=np.uint64)
        self._pos = 0
        self.consumed = 0

    def take(self, k: int) -> np.ndarray:
        end = self._pos + k
        if end > self._buf.shape[0]:
            keep = self._buf[self._pos :]
            grab = max(k - keep.shape[0], 128)
            self._buf = np.concatenate([keep, self._clone.random_raw(grab)])
            self._pos = 0
            end = k
        out = self._buf[self._pos : end]
        self._pos = end
        self.consumed += k
        return out

    def rollback(self, k: int) -> None:
        self._pos -= k
        self.consumed -= k

    def commit(self) -> None:
        """Advance the real bit generator past everything taken."""
        if self.consumed:
            self._real.random_raw(self.consumed)


class _RawPCDecoder:
    """Well-mixed PC selections decoded from the raw stream.

    Per event the serial sequence is ``integers(n)`` (teacher),
    ``integers(n)`` (learner, redrawn while equal), ``random()``
    (adoption uniform): two half-words plus one full word — two raw words
    per collision-free event, in one of two stable carry parities.
    """

    def __init__(self, rng: np.random.Generator, n_ssets: int):
        self._bitgen = rng.bit_generator
        self._n = n_ssets
        self._un = np.uint64(n_ssets)
        self._half: int | None = None

    def draw(self, m: int) -> tuple[list[int], list[int], list[float]]:
        if m == 0:
            return [], [], []
        peek = _RawPeek(self._bitgen)
        teachers: list[int] = [0] * m
        learners: list[int] = [0] * m
        uniforms: list[float] = [0.0] * m
        un = self._un
        i = 0
        while i < m:
            todo = m - i
            raws = peek.take(2 * todo)
            ev = raws[0::2]
            od = raws[1::2]
            if self._half is None:
                t32 = ev & _U32
            else:
                t32 = np.empty(todo, dtype=np.uint64)
                t32[0] = self._half
                t32[1:] = ev[:-1] >> _SHIFT32
            l32 = (ev >> _SHIFT32) if self._half is None else (ev & _U32)
            t_np = (t32 * un) >> _SHIFT32
            l_np = (l32 * un) >> _SHIFT32
            t_arr = t_np.tolist()
            l_arr = l_np.tolist()
            u_arr = ((od >> _SHIFT11) * _DOUBLE_SCALE).tolist()
            collisions = np.nonzero(t_np == l_np)[0]
            collision = int(collisions[0]) if collisions.size else None
            good = todo if collision is None else collision
            teachers[i : i + good] = t_arr[:good]
            learners[i : i + good] = l_arr[:good]
            uniforms[i : i + good] = u_arr[:good]
            if collision is None:
                if self._half is not None:
                    self._half = int(ev[-1] >> _SHIFT32)
                i += todo
                continue
            # Rewind the peek to the collision event and replay it with
            # the scalar redraw loop (collisions are ~1/n rare).
            peek.rollback(2 * (todo - good))
            if self._half is not None and good > 0:
                self._half = int(ev[good - 1] >> _SHIFT32)
            i += good
            teacher = self._next_bounded(peek)
            learner = self._next_bounded(peek)
            while learner == teacher:
                learner = self._next_bounded(peek)
            raw = int(peek.take(1)[0])  # random() draws a full word
            teachers[i] = teacher
            learners[i] = learner
            uniforms[i] = (raw >> 11) * _DOUBLE_SCALE
            i += 1
        peek.commit()
        return teachers, learners, uniforms

    def _next_bounded(self, peek: _RawPeek) -> int:
        if self._half is not None:
            u32 = self._half
            self._half = None
        else:
            raw = int(peek.take(1)[0])
            u32 = raw & 0xFFFFFFFF
            self._half = raw >> 32
        return (u32 * self._n) >> 32


class _ScalarPCDecoder:
    """Generator-API fallback with the identical output shape."""

    def __init__(self, rng: np.random.Generator, n_ssets: int):
        self._rng = rng
        self._n = n_ssets

    def draw(self, m: int) -> tuple[list[int], list[int], list[float]]:
        rng = self._rng
        n = self._n
        teachers = [0] * m
        learners = [0] * m
        uniforms = [0.0] * m
        for i in range(m):
            teacher = int(rng.integers(n))
            learner = int(rng.integers(n))
            while learner == teacher:
                learner = int(rng.integers(n))
            teachers[i] = teacher
            learners[i] = learner
            uniforms[i] = float(rng.random())
        return teachers, learners, uniforms


class _RawMutationDecoder:
    """Mutation targets + pure mutant tables decoded from the raw stream.

    Per event: one half-word (target, Lemire-32) then ``n_states`` bytes
    (table, one byte per move) — a flat half-word stream with no full-word
    draws in between, so the whole batch decodes in one pass.
    """

    def __init__(self, rng: np.random.Generator, n_ssets: int, n_states: int):
        self._bitgen = rng.bit_generator
        self._n = np.uint64(n_ssets)
        self._n_states = n_states
        self._per_event = 1 + n_states // 4
        self._half: int | None = None

    def draw(self, m: int) -> tuple[list[int], np.ndarray]:
        if m == 0:
            return [], np.empty((0, self._n_states), dtype=np.uint8)
        peek = _RawPeek(self._bitgen)
        need = self._per_event * m - (0 if self._half is None else 1)
        n_raws = (need + 1) // 2
        raws = peek.take(n_raws)
        halves = np.empty(2 * n_raws + 1, dtype=np.uint64)
        offset = 0 if self._half is None else 1
        if offset:
            halves[0] = self._half
        halves[offset : offset + 2 * n_raws : 2] = raws & _U32
        halves[offset + 1 : offset + 1 + 2 * n_raws : 2] = raws >> _SHIFT32
        total = offset + 2 * n_raws
        used = self._per_event * m
        self._half = int(halves[used]) if total > used else None
        stream = halves[:used].reshape(m, self._per_event)
        targets = ((stream[:, 0] * self._n) >> _SHIFT32).tolist()
        words = np.ascontiguousarray(stream[:, 1:]).astype("<u4")
        tables = (words.view(np.uint8) >> 7).reshape(m, self._n_states)
        peek.commit()
        return targets, tables


class _ScalarMutationDecoder:
    """Generator-API fallback with the identical output shape."""

    def __init__(self, rng: np.random.Generator, n_ssets: int, n_states: int):
        self._rng = rng
        self._n = n_ssets
        self._n_states = n_states

    def draw(self, m: int) -> tuple[list[int], np.ndarray]:
        rng = self._rng
        targets = [0] * m
        tables = np.empty((m, self._n_states), dtype=np.uint8)
        for i in range(m):
            targets[i] = int(rng.integers(self._n))
            # random_pure's table draw, verbatim.
            tables[i] = rng.integers(
                0, 2, size=self._n_states, dtype=np.uint8
            )
        return targets, tables


_RAW_OK: bool | None = None


def _self_check() -> bool:
    """Compare raw decoding against the real Generator API once per process."""
    try:
        for seed, n, m in ((12345, 4, 96), (777, 64, 40)):
            ref = np.random.Generator(np.random.Philox(seed))
            dec = _RawPCDecoder(np.random.Generator(np.random.Philox(seed)), n)
            expect = _ScalarPCDecoder(ref, n).draw(m)
            # Split draws to exercise the cross-call carry state.
            got_a = dec.draw(m // 2)
            got_b = dec.draw(m - m // 2)
            got = tuple(a + b for a, b in zip(got_a, got_b))
            if got != expect:
                return False
        for seed, n, states, m in ((9, 8, 16, 33), (10, 32, 4, 21)):
            ref = np.random.Generator(np.random.Philox(seed))
            dec = _RawMutationDecoder(
                np.random.Generator(np.random.Philox(seed)), n, states
            )
            expect_t, expect_tab = _ScalarMutationDecoder(ref, n, states).draw(m)
            got_t1, got_tab1 = dec.draw(m // 2)
            got_t2, got_tab2 = dec.draw(m - m // 2)
            if got_t1 + got_t2 != expect_t:
                return False
            if not np.array_equal(
                np.concatenate([got_tab1, got_tab2]), expect_tab
            ):
                return False
    except Exception:  # pragma: no cover - ultra-defensive
        return False
    return True


def raw_decoding_supported(n_ssets: int) -> bool:
    """Whether the raw fast path applies (power-of-two bound + verified
    NumPy primitives)."""
    global _RAW_OK
    if not _is_pow2(n_ssets):
        return False
    if _RAW_OK is None:
        _RAW_OK = _self_check()
    return _RAW_OK


def pc_decoder(rng: np.random.Generator, n_ssets: int):
    """Well-mixed PC pre-draw decoder for one lane (raw or scalar)."""
    if raw_decoding_supported(n_ssets):
        return _RawPCDecoder(rng, n_ssets)
    return _ScalarPCDecoder(rng, n_ssets)


def mutation_decoder(rng: np.random.Generator, n_ssets: int, n_states: int):
    """Mutation pre-draw decoder for one lane (raw or scalar)."""
    if raw_decoding_supported(n_ssets) and n_states % 4 == 0:
        return _RawMutationDecoder(rng, n_ssets, n_states)
    return _ScalarMutationDecoder(rng, n_ssets, n_states)
