"""Exact vectorised pre-draw of per-lane Nature-Agent decision streams.

The pairwise-comparison and mutation streams are *state-independent*: which
SSets an event touches and which mutant table it installs depend only on
the drawn values, never on the population.  A lane's whole batch of
decisions can therefore be drawn ahead of time — the only requirement is
that the RNG stream is consumed **exactly** as the serial drivers consume
it, call for call.

NumPy's ``Generator`` draws these values through a handful of stable
primitives on the Philox raw uint64 stream:

* ``random()`` — one raw word: ``(raw >> 11) * 2**-53``;
* ``integers(n)`` with ``2 <= n < 2**32`` — Lemire's multiply-shift on
  32-bit halves, low half first, with a *persistent* half-word carry
  between calls: ``value = (u32 * n) >> 32``, **rejected and redrawn**
  while the product's low half falls under ``threshold = 2**32 % n``.
  For power-of-two ``n`` the threshold is zero, so every draw consumes
  exactly one half; for other bounds a rejection is a ~``n / 2**32``
  rarity that this module repairs with a scalar fixup, exactly like the
  teacher==learner collision path (the ROADMAP's "Lemire-32 rejection is
  rare and fixup-able" item);
* ``integers(1)`` — answered from the bound alone, **no stream
  consumption** (NumPy's ``rng == 0`` special case; graph lanes meet it
  at degree-1 nodes);
* ``integers(0, 2, size=S, dtype=uint8)`` — one byte per element
  (little-endian within each 32-bit half): ``value = byte >> 7``.

This module re-implements those primitives vectorised over a *clone* of
the bit generator (peek), then advances the real generator by exactly the
number of raw words consumed (commit).  Decoding is enabled only after a
start-up self-check against the real ``Generator`` API passes — so a
future NumPy that changes its bounded-integer algorithm degrades this
module to the scalar path instead of silently changing trajectories (the
lane-parity tests pin the trajectories regardless).  The self-check
includes power-of-two and non-power-of-two bounds, a bound chosen to make
Lemire rejections frequent, and graph (learner-then-neighbor) draws over
an irregular CSR adjacency.

Three decoders are exposed:

* :func:`pc_decoder` — the well-mixed PC selection stream
  (teacher, learner-with-rejection, adoption uniform);
* :func:`graph_pc_decoder` — the graph-structure PC selection stream
  (learner uniform over the population, teacher uniform over the
  learner's CSR neighbor row, adoption uniform) — what lifts graph lanes
  onto the ensemble fast path;
* :func:`mutation_decoder` — mutation targets + pure mutant tables.

The scalar fallbacks produce identical arrays through the ordinary
``Generator`` calls, so callers see one interface either way.
"""

from __future__ import annotations

import numpy as np

from ..core.runstate import decode_bitgen, encode_bitgen

__all__ = [
    "pc_decoder",
    "graph_pc_decoder",
    "mutation_decoder",
    "raw_decoding_supported",
]


def _capture_stream(bit_generator, half: int | None) -> dict:
    """Canonical decoder stream position for a run-state checkpoint.

    One format covers both decoder families: the full bit-generator state
    with the spare half-word carry *folded out* into ``half``.  Raw
    decoders keep the carry in Python (``_half``, bit generator untouched);
    scalar decoders leave it inside the bit generator's
    ``has_uint32``/``uinteger`` buffer (NumPy's ``next_uint32`` carry, low
    half consumed first — the same half-word the raw path tracks).
    Folding makes a snapshot written by either decoder resumable by the
    other, so a trajectory survives the raw self-check flipping between
    processes.
    """
    state = encode_bitgen(bit_generator.state)
    if state["has_uint32"]:
        assert half is None  # carry lives in exactly one place
        half = state["uinteger"]
        state["has_uint32"] = 0
        state["uinteger"] = 0
    return {"state": state, "half": None if half is None else int(half)}


def _restore_raw_stream(bit_generator, data: dict) -> int | None:
    """Rewind a raw decoder's bit generator; returns the carry half."""
    bit_generator.state = decode_bitgen(data["state"])
    half = data["half"]
    return None if half is None else int(half)


def _restore_scalar_stream(rng: np.random.Generator, data: dict) -> None:
    """Rewind a scalar decoder's Generator, re-folding the carry into the
    bit generator's uint32 buffer where the Generator API expects it."""
    state = decode_bitgen(data["state"])
    half = data["half"]
    if half is not None:
        state["has_uint32"] = 1
        state["uinteger"] = int(half)
    rng.bit_generator.state = state

_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_SHIFT11 = np.uint64(11)
_DOUBLE_SCALE = 1.0 / (1 << 53)


def _lemire_threshold(n: int) -> int:
    """NumPy's bounded-integer rejection threshold for ``integers(n)``:
    products whose low 32 bits fall below it are redrawn (zero for
    power-of-two bounds — ``(2**32 - n) % n == 2**32 % n``)."""
    return (1 << 32) % n


class _RawPeek:
    """Read ahead on a cloned Philox; commit consumption at the end."""

    def __init__(self, bit_generator):
        clone = np.random.Philox()
        clone.state = bit_generator.state
        self._clone = clone
        self._real = bit_generator
        self._buf = np.empty(0, dtype=np.uint64)
        self._pos = 0
        self.consumed = 0

    def take(self, k: int) -> np.ndarray:
        end = self._pos + k
        if end > self._buf.shape[0]:
            keep = self._buf[self._pos :]
            grab = max(k - keep.shape[0], 128)
            self._buf = np.concatenate([keep, self._clone.random_raw(grab)])
            self._pos = 0
            end = k
        out = self._buf[self._pos : end]
        self._pos = end
        self.consumed += k
        return out

    def rollback(self, k: int) -> None:
        self._pos -= k
        self.consumed -= k

    def commit(self) -> None:
        """Advance the real bit generator past everything taken."""
        if self.consumed:
            self._real.random_raw(self.consumed)


def _scalar_bounded(decoder, peek: _RawPeek, n: int, threshold: int) -> int:
    """One ``integers(n)`` value off the half-word stream, Lemire rejection
    included, updating the decoder's persistent half-word carry.  Mirrors
    NumPy's ``buffered_bounded_lemire_uint32`` exactly (``n >= 2``)."""
    while True:
        if decoder._half is not None:
            u32 = decoder._half
            decoder._half = None
        else:
            raw = int(peek.take(1)[0])
            u32 = raw & 0xFFFFFFFF
            decoder._half = raw >> 32
        product = u32 * n
        if (product & 0xFFFFFFFF) >= threshold:
            return product >> 32


class _RawPCDecoder:
    """Well-mixed PC selections decoded from the raw stream.

    Per event the serial sequence is ``integers(n)`` (teacher),
    ``integers(n)`` (learner, redrawn while equal), ``random()``
    (adoption uniform): two half-words plus one full word — two raw words
    per clean event, in one of two stable carry parities.  Events that
    collide (teacher == learner) or hit a Lemire rejection consume extra
    draws; both are rare and replayed through the scalar fixup.
    """

    def __init__(self, rng: np.random.Generator, n_ssets: int):
        self._bitgen = rng.bit_generator
        self._n = n_ssets
        self._un = np.uint64(n_ssets)
        self._thr = np.uint64(_lemire_threshold(n_ssets))
        self._half: int | None = None

    def state_dict(self) -> dict:
        return _capture_stream(self._bitgen, self._half)

    def set_state(self, data: dict) -> None:
        self._half = _restore_raw_stream(self._bitgen, data)

    def draw(self, m: int) -> tuple[list[int], list[int], list[float]]:
        if m == 0:
            return [], [], []
        peek = _RawPeek(self._bitgen)
        teachers: list[int] = [0] * m
        learners: list[int] = [0] * m
        uniforms: list[float] = [0.0] * m
        un = self._un
        thr = self._thr
        i = 0
        while i < m:
            todo = m - i
            raws = peek.take(2 * todo)
            ev = raws[0::2]
            od = raws[1::2]
            if self._half is None:
                t32 = ev & _U32
                l32 = ev >> _SHIFT32
            else:
                t32 = np.empty(todo, dtype=np.uint64)
                t32[0] = self._half
                t32[1:] = ev[:-1] >> _SHIFT32
                l32 = ev & _U32
            mt = t32 * un
            ml = l32 * un
            t_np = mt >> _SHIFT32
            l_np = ml >> _SHIFT32
            t_arr = t_np.tolist()
            l_arr = l_np.tolist()
            u_arr = ((od >> _SHIFT11) * _DOUBLE_SCALE).tolist()
            # An event is "bad" — misaligned from here on — when either
            # bounded draw was Lemire-rejected or the pair collided.
            bad = (mt & _U32) < thr
            bad |= (ml & _U32) < thr
            bad |= t_np == l_np
            bads = np.nonzero(bad)[0]
            first_bad = int(bads[0]) if bads.size else None
            good = todo if first_bad is None else first_bad
            teachers[i : i + good] = t_arr[:good]
            learners[i : i + good] = l_arr[:good]
            uniforms[i : i + good] = u_arr[:good]
            if first_bad is None:
                if self._half is not None:
                    self._half = int(ev[-1] >> _SHIFT32)
                i += todo
                continue
            # Rewind the peek to the bad event and replay it with the
            # scalar loop (collisions are ~1/n rare, rejections ~n/2**32).
            peek.rollback(2 * (todo - good))
            if self._half is not None and good > 0:
                self._half = int(ev[good - 1] >> _SHIFT32)
            i += good
            teacher = _scalar_bounded(self, peek, self._n, int(thr))
            learner = _scalar_bounded(self, peek, self._n, int(thr))
            while learner == teacher:
                learner = _scalar_bounded(self, peek, self._n, int(thr))
            raw = int(peek.take(1)[0])  # random() draws a full word
            teachers[i] = teacher
            learners[i] = learner
            uniforms[i] = (raw >> 11) * _DOUBLE_SCALE
            i += 1
        peek.commit()
        return teachers, learners, uniforms


class _ScalarPCDecoder:
    """Generator-API fallback with the identical output shape."""

    def __init__(self, rng: np.random.Generator, n_ssets: int):
        self._rng = rng
        self._n = n_ssets

    def state_dict(self) -> dict:
        return _capture_stream(self._rng.bit_generator, None)

    def set_state(self, data: dict) -> None:
        _restore_scalar_stream(self._rng, data)

    def draw(self, m: int) -> tuple[list[int], list[int], list[float]]:
        rng = self._rng
        n = self._n
        teachers = [0] * m
        learners = [0] * m
        uniforms = [0.0] * m
        for i in range(m):
            teacher = int(rng.integers(n))
            learner = int(rng.integers(n))
            while learner == teacher:
                learner = int(rng.integers(n))
            teachers[i] = teacher
            learners[i] = learner
            uniforms[i] = float(rng.random())
        return teachers, learners, uniforms


class _RawGraphPCDecoder:
    """Graph-structure PC selections decoded from the raw stream.

    Per event the serial sequence (:meth:`GraphStructure.select_pair`) is
    ``integers(n)`` (learner), ``integers(degree(learner))`` (teacher
    offset into the learner's CSR neighbor row), ``random()`` (adoption
    uniform) — the well-mixed two-halves-plus-a-word shape with the roles
    swapped and a *value-dependent* second bound.  Degree-1 learners are
    routed through the scalar fixup: NumPy answers ``integers(1)`` from
    the bound alone without consuming the stream.
    """

    def __init__(self, rng: np.random.Generator, structure):
        self._bitgen = rng.bit_generator
        n = structure.n_ssets
        self._n = n
        self._un = np.uint64(n)
        self._thr_n = np.uint64(_lemire_threshold(n))
        self._indptr = structure.indptr.astype(np.int64)
        self._indices = structure.indices
        self._deg = structure.degrees.astype(np.uint64)
        self._thr_deg = np.uint64(1 << 32) % self._deg
        self._half: int | None = None

    def state_dict(self) -> dict:
        return _capture_stream(self._bitgen, self._half)

    def set_state(self, data: dict) -> None:
        self._half = _restore_raw_stream(self._bitgen, data)

    def draw(self, m: int) -> tuple[list[int], list[int], list[float]]:
        if m == 0:
            return [], [], []
        peek = _RawPeek(self._bitgen)
        teachers: list[int] = [0] * m
        learners: list[int] = [0] * m
        uniforms: list[float] = [0.0] * m
        i = 0
        while i < m:
            todo = m - i
            raws = peek.take(2 * todo)
            ev = raws[0::2]
            od = raws[1::2]
            if self._half is None:
                l32 = ev & _U32
                t32 = ev >> _SHIFT32
            else:
                l32 = np.empty(todo, dtype=np.uint64)
                l32[0] = self._half
                l32[1:] = ev[:-1] >> _SHIFT32
                t32 = ev & _U32
            ml = l32 * self._un
            l_np = (ml >> _SHIFT32).astype(np.int64)
            bounds = self._deg[l_np]
            mt = t32 * bounds
            tidx = (mt >> _SHIFT32).astype(np.int64)
            # Bad events: learner rejected (making the decoded bound
            # meaningless), teacher offset rejected, or a degree-1 learner
            # (whose offset draw consumes nothing).
            bad = (ml & _U32) < self._thr_n
            bad |= (mt & _U32) < self._thr_deg[l_np]
            bad |= bounds == 1
            bads = np.nonzero(bad)[0]
            first_bad = int(bads[0]) if bads.size else None
            good = todo if first_bad is None else first_bad
            if good:
                l_good = l_np[:good]
                t_good = self._indices[self._indptr[l_good] + tidx[:good]]
                learners[i : i + good] = l_good.tolist()
                teachers[i : i + good] = t_good.tolist()
                uniforms[i : i + good] = (
                    (od[:good] >> _SHIFT11) * _DOUBLE_SCALE
                ).tolist()
            if first_bad is None:
                if self._half is not None:
                    self._half = int(ev[-1] >> _SHIFT32)
                i += todo
                continue
            peek.rollback(2 * (todo - good))
            if self._half is not None and good > 0:
                self._half = int(ev[good - 1] >> _SHIFT32)
            i += good
            learner = _scalar_bounded(self, peek, self._n, int(self._thr_n))
            degree = int(self._deg[learner])
            if degree == 1:
                offset = 0  # integers(1): no stream consumption
            else:
                offset = _scalar_bounded(
                    self, peek, degree, _lemire_threshold(degree)
                )
            raw = int(peek.take(1)[0])
            learners[i] = learner
            teachers[i] = int(self._indices[self._indptr[learner] + offset])
            uniforms[i] = (raw >> 11) * _DOUBLE_SCALE
            i += 1
        peek.commit()
        return teachers, learners, uniforms


class _ScalarGraphPCDecoder:
    """Generator-API fallback: drives the structure's own ``select_pair``
    so the consumption contract lives in exactly one place."""

    def __init__(self, rng: np.random.Generator, structure):
        self._rng = rng
        self._structure = structure

    def state_dict(self) -> dict:
        return _capture_stream(self._rng.bit_generator, None)

    def set_state(self, data: dict) -> None:
        _restore_scalar_stream(self._rng, data)

    def draw(self, m: int) -> tuple[list[int], list[int], list[float]]:
        rng = self._rng
        select = self._structure.select_pair
        teachers = [0] * m
        learners = [0] * m
        uniforms = [0.0] * m
        for i in range(m):
            teacher, learner = select(rng)
            teachers[i] = teacher
            learners[i] = learner
            uniforms[i] = float(rng.random())
        return teachers, learners, uniforms


class _RawMutationDecoder:
    """Mutation targets + pure mutant tables decoded from the raw stream.

    Per event: one half-word (target, Lemire-32) then ``n_states`` bytes
    (table, one byte per move) — a flat half-word stream with no full-word
    draws in between, so a whole batch decodes in one pass; a rejected
    target half is repaired through the scalar fixup.
    """

    def __init__(self, rng: np.random.Generator, n_ssets: int, n_states: int):
        self._bitgen = rng.bit_generator
        self._n = n_ssets
        self._un = np.uint64(n_ssets)
        self._thr = np.uint64(_lemire_threshold(n_ssets))
        self._n_states = n_states
        self._per_event = 1 + n_states // 4
        self._half: int | None = None

    def state_dict(self) -> dict:
        return _capture_stream(self._bitgen, self._half)

    def set_state(self, data: dict) -> None:
        self._half = _restore_raw_stream(self._bitgen, data)

    def _take_halves(self, peek: _RawPeek, need: int) -> tuple[np.ndarray, int]:
        """``need`` half-words as one array (carry first when present),
        plus the raw-word count taken — so the caller can roll back to any
        half boundary through :meth:`_finish_halves`."""
        offset = 0 if self._half is None else 1
        n_raws = (need - offset + 1) // 2 if need > offset else 0
        raws = peek.take(n_raws)
        halves = np.empty(offset + 2 * n_raws, dtype=np.uint64)
        if offset:
            halves[0] = self._half
        halves[offset : offset + 2 * n_raws : 2] = raws & _U32
        halves[offset + 1 : offset + 1 + 2 * n_raws : 2] = raws >> _SHIFT32
        return halves, n_raws

    def _finish_halves(
        self, peek: _RawPeek, halves: np.ndarray, used: int, raws_taken: int
    ) -> None:
        """Record that only ``used`` of the taken halves were consumed:
        roll the peek back to the matching raw-word boundary and update
        the carry (the high half of a split word survives to the next
        draw)."""
        offset = 0 if self._half is None else 1
        from_raws = max(0, used - offset)
        raws_needed = (from_raws + 1) // 2
        peek.rollback(raws_taken - raws_needed)
        if used == 0:
            return  # nothing consumed: any pre-existing carry survives
        self._half = int(halves[used]) if from_raws % 2 else None

    def draw(self, m: int) -> tuple[list[int], np.ndarray]:
        if m == 0:
            return [], np.empty((0, self._n_states), dtype=np.uint8)
        peek = _RawPeek(self._bitgen)
        targets: list[int] = [0] * m
        tables = np.empty((m, self._n_states), dtype=np.uint8)
        per_event = self._per_event
        i = 0
        while i < m:
            todo = m - i
            halves, raws_taken = self._take_halves(peek, per_event * todo)
            stream = halves[: per_event * todo].reshape(todo, per_event)
            m64 = stream[:, 0] * self._un
            rejected = np.nonzero((m64 & _U32) < self._thr)[0]
            good = todo if rejected.size == 0 else int(rejected[0])
            if good:
                targets[i : i + good] = (m64[:good] >> _SHIFT32).tolist()
                words = np.ascontiguousarray(stream[:good, 1:]).astype("<u4")
                tables[i : i + good] = (words.view(np.uint8) >> 7).reshape(
                    good, self._n_states
                )
            if rejected.size == 0:
                self._finish_halves(peek, halves, per_event * todo, raws_taken)
                i += todo
                continue
            # Roll back to the rejected event and replay it scalar.
            self._finish_halves(peek, halves, per_event * good, raws_taken)
            i += good
            targets[i] = _scalar_bounded(self, peek, self._n, int(self._thr))
            word_halves, word_raws = self._take_halves(
                peek, self._n_states // 4
            )
            self._finish_halves(
                peek, word_halves, self._n_states // 4, word_raws
            )
            words = np.ascontiguousarray(
                word_halves[: self._n_states // 4]
            ).astype("<u4")
            tables[i] = words.view(np.uint8) >> 7
            i += 1
        peek.commit()
        return targets, tables


class _ScalarMutationDecoder:
    """Generator-API fallback with the identical output shape."""

    def __init__(self, rng: np.random.Generator, n_ssets: int, n_states: int):
        self._rng = rng
        self._n = n_ssets
        self._n_states = n_states

    def state_dict(self) -> dict:
        return _capture_stream(self._rng.bit_generator, None)

    def set_state(self, data: dict) -> None:
        _restore_scalar_stream(self._rng, data)

    def draw(self, m: int) -> tuple[list[int], np.ndarray]:
        rng = self._rng
        targets = [0] * m
        tables = np.empty((m, self._n_states), dtype=np.uint8)
        for i in range(m):
            targets[i] = int(rng.integers(self._n))
            # random_pure's table draw, verbatim.
            tables[i] = rng.integers(
                0, 2, size=self._n_states, dtype=np.uint8
            )
        return targets, tables


_RAW_OK: bool | None = None

#: High-rejection self-check bound: 2**32 % n is ~2**31.4, so one draw in
#: three Lemire-rejects and the fixup path is exercised for real (for
#: realistic population sizes a rejection is a ~n/2**32 rarity).
_REJECTION_HEAVY_N = 2863311531


class _CheckGraph:
    """Minimal CSR stand-in for the self-check: irregular degrees
    (1, 2, 3, 4, 5) including a degree-1 node, symmetric by construction."""

    def __init__(self):
        adjacency = {
            0: [1],
            1: [0, 2],
            2: [1, 3, 4, 5, 6],
            3: [2, 4, 6],
            4: [2, 3, 5, 6],
            5: [2, 4],
            6: [2, 3, 4],
        }
        self.n_ssets = len(adjacency)
        self.degrees = np.array(
            [len(adjacency[i]) for i in range(self.n_ssets)], dtype=np.int32
        )
        self.indptr = np.zeros(self.n_ssets + 1, dtype=np.int32)
        np.cumsum(self.degrees, out=self.indptr[1:])
        self.indices = np.concatenate(
            [np.array(adjacency[i], dtype=np.int32) for i in range(self.n_ssets)]
        )

    def select_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        # GraphStructure.select_pair's exact consumption, for the scalar
        # reference side of the self-check.
        learner = int(rng.integers(self.n_ssets))
        start = self.indptr[learner]
        offset = int(rng.integers(int(self.degrees[learner])))
        return int(self.indices[start + offset]), learner


def _self_check() -> bool:
    """Compare raw decoding against the real Generator API once per process."""
    try:
        pc_cases = (
            (12345, 4, 96),  # power of two (rejection-free)
            (777, 64, 40),
            (424, 48, 64),  # non-power-of-two (rare rejections)
            (99, 100, 64),
            (5, _REJECTION_HEAVY_N, 64),  # ~1/3 of draws reject
        )
        for seed, n, m in pc_cases:
            ref = np.random.Generator(np.random.Philox(seed))
            dec = _RawPCDecoder(np.random.Generator(np.random.Philox(seed)), n)
            expect = _ScalarPCDecoder(ref, n).draw(m)
            # Split draws to exercise the cross-call carry state.
            got_a = dec.draw(m // 2)
            got_b = dec.draw(m - m // 2)
            got = tuple(a + b for a, b in zip(got_a, got_b))
            if got != expect:
                return False
        mutation_cases = (
            (9, 8, 16, 33),
            (10, 32, 4, 21),
            (11, 48, 16, 33),  # non-power-of-two target bound
            (12, _REJECTION_HEAVY_N, 4, 48),  # rejection-heavy targets
        )
        for seed, n, states, m in mutation_cases:
            ref = np.random.Generator(np.random.Philox(seed))
            dec = _RawMutationDecoder(
                np.random.Generator(np.random.Philox(seed)), n, states
            )
            expect_t, expect_tab = _ScalarMutationDecoder(ref, n, states).draw(m)
            got_t1, got_tab1 = dec.draw(m // 2)
            got_t2, got_tab2 = dec.draw(m - m // 2)
            if got_t1 + got_t2 != expect_t:
                return False
            if not np.array_equal(
                np.concatenate([got_tab1, got_tab2]), expect_tab
            ):
                return False
        graph = _CheckGraph()
        for seed, m in ((21, 96), (22, 41)):
            ref = np.random.Generator(np.random.Philox(seed))
            dec = _RawGraphPCDecoder(
                np.random.Generator(np.random.Philox(seed)), graph
            )
            expect = _ScalarGraphPCDecoder(ref, graph).draw(m)
            got_a = dec.draw(m // 2)
            got_b = dec.draw(m - m // 2)
            got = tuple(a + b for a, b in zip(got_a, got_b))
            if got != expect:
                return False
    except Exception:  # pragma: no cover - ultra-defensive
        return False
    return True


def raw_decoding_supported(n_ssets: int) -> bool:
    """Whether the raw fast path applies: any bound below 2**32 (Lemire
    rejections are decoded with a scalar fixup), gated on the start-up
    self-check of the NumPy primitives."""
    global _RAW_OK
    if not 2 <= n_ssets < 1 << 32:
        return False
    if _RAW_OK is None:
        _RAW_OK = _self_check()
    return _RAW_OK


def pc_decoder(rng: np.random.Generator, n_ssets: int):
    """Well-mixed PC pre-draw decoder for one lane (raw or scalar)."""
    if raw_decoding_supported(n_ssets):
        return _RawPCDecoder(rng, n_ssets)
    return _ScalarPCDecoder(rng, n_ssets)


def graph_pc_decoder(rng: np.random.Generator, structure):
    """Graph (learner-then-neighbor) PC pre-draw decoder for one lane.

    ``structure`` is a :class:`~repro.structure.graphs.GraphStructure`
    (anything exposing CSR ``indptr``/``indices``/``degrees`` plus
    ``select_pair`` works); the raw path decodes both bounded draws and
    the adoption uniform straight off the Philox counter stream.
    """
    if raw_decoding_supported(structure.n_ssets):
        return _RawGraphPCDecoder(rng, structure)
    return _ScalarGraphPCDecoder(rng, structure)


def mutation_decoder(rng: np.random.Generator, n_ssets: int, n_states: int):
    """Mutation pre-draw decoder for one lane (raw or scalar)."""
    if raw_decoding_supported(n_ssets) and n_states % 4 == 0:
        return _RawMutationDecoder(rng, n_ssets, n_states)
    return _ScalarMutationDecoder(rng, n_ssets, n_states)
