"""Lane-batched ensemble execution: a whole sweep as one array program.

The ensemble subsystem stacks R independent replicates ("lanes") of the
evolutionary dynamics into one interpreter loop over shared arrays: a
single interned-strategy pool and dense payoff matrix serve every lane
(:class:`EnsembleEngine`), event flags are scanned together, and fitness is
evaluated in batched payoff-matrix gathers — while per-lane RNG streams
preserve each replicate's exact serial call order, so every lane's
trajectory is **bit-identical** to the same-seed serial ``event`` run.

Most callers reach this through the ``ensemble`` backend::

    from repro import run_sweep
    results = run_sweep(configs, backend="ensemble", base_seed=7)

:func:`run_ensemble` is the direct library entry point.
"""

from .driver import lane_signature, run_ensemble, run_ensemble_detailed
from .engine import EnsembleEngine, supports_shared_engine

__all__ = [
    "EnsembleEngine",
    "lane_signature",
    "run_ensemble",
    "run_ensemble_detailed",
    "supports_shared_engine",
]
