"""Machine models: Blue Gene/P, Blue Gene/Q, generic clusters.

Provides torus topologies, network-model construction for the MPI
simulator, calibrated kernel constants, and the memory-capacity model that
reproduces the paper's "memory-six is the limit" claim.
"""

from .bluegene import (
    BLUEGENE_P,
    BLUEGENE_Q,
    GENERIC_CLUSTER,
    MachineSpec,
    network_for,
)
from .memory import (
    MemoryFootprint,
    estimate_footprint,
    max_memory_steps,
)
from .topology import TorusTopology, balanced_dims

__all__ = [
    "BLUEGENE_P",
    "BLUEGENE_Q",
    "GENERIC_CLUSTER",
    "MachineSpec",
    "network_for",
    "MemoryFootprint",
    "estimate_footprint",
    "max_memory_steps",
    "TorusTopology",
    "balanced_dims",
]
