"""Machine specifications: Blue Gene/P, Blue Gene/Q, and generic clusters.

These models carry the constants the cost model and the network model need:
node/core organisation, memory capacity, torus dimensionality and link
parameters, collective-network parameters, and the **calibrated kernel
constants** for the paper's game-play inner loop.

Kernel-constant calibration (see DESIGN.md sections 2–3 and EXPERIMENTS.md):
the paper's agent kernel identifies the current game state by searching the
state list, so the per-round cost grows with memory steps.  We model

    t_round(n) = t_round_fixed + t_state_coeff * n**2

(binary search over ``4**n`` states comparing 2n-bit keys ~ n^2).  The two
constants per machine are fitted to the paper's absolute runtimes:

* Figure 5 (BG/P, 2048 SSets / 2048 procs / 20 gens): memory-six total
  ~220 s -> t_round(6) ~ 27 us; memory-one ~10 s -> t_round(1) ~ 1.3 us.
* Figure 3 (BG/Q, 4096 SSets / 256 procs / 100 gens, memory-one): tuned
  runtime ~2300 s -> t_round(1) ~ 1.76 us.

``sync_fraction`` is the empirical non-overlapped communication penalty per
generation, expressed as a fraction of one SSet's game time; it reproduces
the paper's Table VI knee (~55 % efficiency at one SSet per processor,
>99 % at two).  ``split_overhead`` is the duplicated-work fraction per extra
rank sharing one SSet (split decomposition), calibrated to Fig. 6b's 82 %
at half an SSet per processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mpisim.network import NetworkModel
from .topology import TorusTopology

__all__ = ["MachineSpec", "BLUEGENE_P", "BLUEGENE_Q", "GENERIC_CLUSTER", "network_for"]


@dataclass(frozen=True)
class MachineSpec:
    """Constants describing one machine model."""

    name: str
    cores_per_node: int
    threads_per_core: int
    clock_ghz: float
    memory_per_node_bytes: int
    torus_dims: int
    #: Default MPI ranks per node used by the paper on this machine.
    default_ranks_per_node: int
    # network constants
    alpha_p2p: float
    beta_p2p: float
    hop_latency: float
    alpha_coll: float
    beta_coll: float
    overhead: float
    # calibrated game-kernel constants (seconds)
    t_round_fixed: float
    t_state_coeff: float
    #: Per-SSet loop overhead per generation (seconds).
    t_sset_overhead: float
    #: Nature Agent bookkeeping per event (seconds).
    t_nature_event: float
    #: Fraction of one SSet's game time exposed as un-overlapped sync when a
    #: rank holds a single SSet (Table VI calibration).
    sync_fraction: float
    #: Duplicated-work fraction per extra rank sharing a split SSet
    #: (Fig. 6b calibration).
    split_overhead: float
    #: Thread-parallel region fork/join overhead (seconds).
    thread_fork_overhead: float

    def __post_init__(self) -> None:
        if self.cores_per_node < 1 or self.default_ranks_per_node < 1:
            raise ConfigurationError(f"invalid core counts in {self.name}")
        if self.memory_per_node_bytes <= 0:
            raise ConfigurationError(f"invalid memory size in {self.name}")

    @property
    def max_threads_per_node(self) -> int:
        return self.cores_per_node * self.threads_per_core

    def memory_per_rank_bytes(self, ranks_per_node: int | None = None) -> int:
        """Memory available to one MPI rank."""
        rpn = ranks_per_node or self.default_ranks_per_node
        if rpn < 1:
            raise ConfigurationError(f"ranks_per_node must be >= 1, got {rpn}")
        return self.memory_per_node_bytes // rpn

    def nodes_for_ranks(self, n_ranks: int, ranks_per_node: int | None = None) -> int:
        """Nodes needed for ``n_ranks`` MPI ranks."""
        rpn = ranks_per_node or self.default_ranks_per_node
        return -(-n_ranks // rpn)

    def t_round(self, memory_steps: int) -> float:
        """Calibrated per-round game cost on one core (paper kernel)."""
        return self.t_round_fixed + self.t_state_coeff * memory_steps**2


#: Blue Gene/P: 4 x PPC450 850 MHz per node, 2 GB/node, 3-D torus
#: (425 MB/s/link), tree collective network.  The paper ran flat MPI in
#: virtual-node mode: 4 ranks/node, 512 MB per rank.
BLUEGENE_P = MachineSpec(
    name="BlueGene/P",
    cores_per_node=4,
    threads_per_core=1,
    clock_ghz=0.85,
    memory_per_node_bytes=2 * 1024**3,
    torus_dims=3,
    default_ranks_per_node=4,
    alpha_p2p=2.7e-6,
    beta_p2p=1.0 / 375e6,
    hop_latency=100e-9,
    alpha_coll=2.5e-6,
    beta_coll=1.0 / 700e6,
    overhead=6e-7,
    t_round_fixed=0.60e-6,
    t_state_coeff=0.73e-6,
    t_sset_overhead=2.0e-6,
    t_nature_event=5.0e-6,
    sync_fraction=0.80,
    split_overhead=0.22,
    thread_fork_overhead=0.0,  # paper used flat MPI (virtual-node mode) on BG/P
)

#: Blue Gene/Q: 16 x A2 1.6 GHz per node (4 hw threads/core), 16 GB/node,
#: 5-D torus (2 GB/s/link).  The paper's best setup: 32 ranks/node with
#: 2 threads per rank.
BLUEGENE_Q = MachineSpec(
    name="BlueGene/Q",
    cores_per_node=16,
    threads_per_core=4,
    clock_ghz=1.6,
    memory_per_node_bytes=16 * 1024**3,
    torus_dims=5,
    default_ranks_per_node=32,
    alpha_p2p=2.2e-6,
    beta_p2p=1.0 / 1.8e9,
    hop_latency=40e-9,
    alpha_coll=1.8e-6,
    beta_coll=1.0 / 1.5e9,
    overhead=4e-7,
    t_round_fixed=0.80e-6,
    t_state_coeff=0.96e-6,
    t_sset_overhead=1.5e-6,
    t_nature_event=4.0e-6,
    sync_fraction=0.80,
    split_overhead=0.22,
    thread_fork_overhead=3.0e-6,
)

#: A generic commodity cluster for exploratory runs.
GENERIC_CLUSTER = MachineSpec(
    name="generic-cluster",
    cores_per_node=32,
    threads_per_core=2,
    clock_ghz=2.5,
    memory_per_node_bytes=128 * 1024**3,
    torus_dims=3,
    default_ranks_per_node=32,
    alpha_p2p=1.5e-6,
    beta_p2p=1.0 / 10e9,
    hop_latency=200e-9,
    alpha_coll=3.0e-6,
    beta_coll=1.0 / 5e9,
    overhead=3e-7,
    t_round_fixed=0.30e-6,
    t_state_coeff=0.35e-6,
    t_sset_overhead=1.0e-6,
    t_nature_event=2.0e-6,
    sync_fraction=0.80,
    split_overhead=0.22,
    thread_fork_overhead=2.0e-6,
)


def network_for(
    spec: MachineSpec, n_ranks: int, ranks_per_node: int | None = None
) -> NetworkModel:
    """Build the simulator network model for ``n_ranks`` on ``spec``.

    Ranks are packed onto nodes in blocks; hop distances come from the
    machine's torus over the node count.
    """
    rpn = ranks_per_node or spec.default_ranks_per_node
    n_nodes = spec.nodes_for_ranks(n_ranks, rpn)
    torus = TorusTopology.for_nodes(n_nodes, spec.torus_dims)

    def hops(src: int, dst: int) -> int:
        return torus.hop_distance(src // rpn, dst // rpn)

    return NetworkModel(
        n_ranks=n_ranks,
        alpha_p2p=spec.alpha_p2p,
        beta_p2p=spec.beta_p2p,
        hop_latency=spec.hop_latency,
        hops=hops,
        alpha_coll=spec.alpha_coll,
        beta_coll=spec.beta_coll,
        overhead=spec.overhead,
    )
