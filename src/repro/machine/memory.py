"""Memory-footprint model (the paper's "memory-six is the limit" claim).

Per the paper's Section V, each rank stores a local view of the strategy
space: one table per strategy *currently present* (the Nature Agent is the
record keeper; agents keep "only strategies currently held by other SSets").
A memory-*n* pure strategy table is ``4**n`` bytes (one move per state), so
a rank's dominant footprint is

    n_strategies * 4**n  +  per-SSet bookkeeping  +  communication buffers.

On Blue Gene/P in virtual-node mode each rank has 512 MB.  With the paper's
32,768-strategy working set: memory-six needs 32768 * 4096 B = 128 MB
(fits), while memory-seven would need 512 MB for the tables alone plus
runtime overheads (does not fit) — "memory-six is the highest-level strategy
that can be modeled on current supercomputing platforms due to memory
restrictions".  ``benchmarks/test_claim_memory_limit.py`` regenerates the
claim from this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.states import num_states
from ..errors import MemoryCapacityError
from .bluegene import MachineSpec

__all__ = ["MemoryFootprint", "estimate_footprint", "max_memory_steps"]

#: Fixed per-rank runtime overhead (code, stacks, MPI buffers), bytes.
RUNTIME_OVERHEAD_BYTES: int = 64 * 1024**2
#: Per-SSet bookkeeping (fitness accumulators, ids, current views), bytes.
PER_SSET_BYTES: int = 64
#: Communication buffer per strategy-size message (send + recv staging).
COMM_BUFFER_FACTOR: int = 4


@dataclass(frozen=True)
class MemoryFootprint:
    """Estimated bytes used by one rank."""

    strategy_store: int
    sset_bookkeeping: int
    comm_buffers: int
    runtime_overhead: int

    @property
    def total(self) -> int:
        return (
            self.strategy_store
            + self.sset_bookkeeping
            + self.comm_buffers
            + self.runtime_overhead
        )


def estimate_footprint(
    memory_steps: int,
    n_strategies: int,
    ssets_per_rank: int,
    mixed_strategies: bool = False,
) -> MemoryFootprint:
    """Estimate one rank's memory footprint.

    ``n_strategies`` is the strategy working-set size (distinct strategies
    kept in the local view); mixed strategies store 8-byte probabilities
    instead of 1-byte moves.
    """
    bytes_per_state = 8 if mixed_strategies else 1
    table_bytes = num_states(memory_steps) * bytes_per_state
    return MemoryFootprint(
        strategy_store=n_strategies * table_bytes,
        sset_bookkeeping=max(0, ssets_per_rank) * PER_SSET_BYTES,
        comm_buffers=COMM_BUFFER_FACTOR * table_bytes,
        runtime_overhead=RUNTIME_OVERHEAD_BYTES,
    )


def max_memory_steps(
    spec: MachineSpec,
    n_strategies: int,
    ssets_per_rank: int = 4096,
    ranks_per_node: int | None = None,
    mixed_strategies: bool = False,
    hard_limit: int = 12,
) -> int:
    """Largest memory-*n* that fits in one rank's memory on ``spec``.

    Raises :class:`MemoryCapacityError` when even memory-one does not fit.
    """
    budget = spec.memory_per_rank_bytes(ranks_per_node)
    best = 0
    for n in range(1, hard_limit + 1):
        fp = estimate_footprint(n, n_strategies, ssets_per_rank, mixed_strategies)
        if fp.total <= budget:
            best = n
        else:
            break
    if best == 0:
        raise MemoryCapacityError(
            f"memory-one already exceeds {spec.name}'s per-rank budget "
            f"({budget} bytes) with {n_strategies} strategies"
        )
    return best
