"""Torus topologies (Blue Gene/P: 3-D torus; Blue Gene/Q: 5-D torus).

Point-to-point messages on Blue Gene travel over a k-ary n-dimensional torus
with wrap-around links; the hop count between two nodes is the sum of the
per-dimension wrap distances.  The paper routes fitness returns over the
torus and collectives over the dedicated tree network (Section V.B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["TorusTopology", "balanced_dims"]


def balanced_dims(n_nodes: int, n_dims: int) -> tuple[int, ...]:
    """Factor ``n_nodes`` into ``n_dims`` near-equal torus dimensions.

    Greedy: repeatedly assign the largest remaining prime-ish factor to the
    currently smallest dimension.  Produces exact factorizations for the
    powers of two used by Blue Gene partitions.
    """
    if n_nodes < 1:
        raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_dims < 1:
        raise ConfigurationError(f"n_dims must be >= 1, got {n_dims}")
    dims = [1] * n_dims
    remaining = n_nodes
    factor = 2
    factors: list[int] = []
    while remaining > 1:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
        if factor * factor > remaining and remaining > 1:
            factors.append(remaining)
            break
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class TorusTopology:
    """A k-ary n-D torus over ``prod(dims)`` nodes, ranks in row-major order."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ConfigurationError(f"invalid torus dims {self.dims}")

    @classmethod
    def for_nodes(cls, n_nodes: int, n_dims: int) -> "TorusTopology":
        """Build a balanced torus for ``n_nodes``."""
        return cls(balanced_dims(n_nodes, n_dims))

    @property
    def n_nodes(self) -> int:
        return math.prod(self.dims)

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Row-major coordinates of a node."""
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(
                f"node {node} out of range for torus of {self.n_nodes}"
            )
        coords = []
        for dim in reversed(self.dims):
            coords.append(node % dim)
            node //= dim
        return tuple(reversed(coords))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Row-major rank of a coordinate tuple (inverse of
        :meth:`coordinates`)."""
        if len(coords) != len(self.dims):
            raise ConfigurationError(
                f"expected {len(self.dims)} coordinates, got {coords}"
            )
        rank = 0
        for c, dim in zip(coords, self.dims):
            if not 0 <= c < dim:
                raise ConfigurationError(
                    f"coordinate {coords} out of range for dims {self.dims}"
                )
            rank = rank * dim + c
        return rank

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Distinct unit-hop neighbors of a node, sorted.

        One step ±1 per dimension with wrap-around.  Dimensions of size 1
        contribute no neighbors and dimensions of size 2 contribute one (the
        +1 and -1 steps coincide), so the degree is ``<= 2 * len(dims)``.
        This is both the machine's point-to-point adjacency and the
        von-Neumann neighborhood the structured-population grid reuses.
        """
        coords = self.coordinates(node)
        out: set[int] = set()
        for axis, dim in enumerate(self.dims):
            if dim == 1:
                continue
            for step in (-1, 1):
                shifted = list(coords)
                shifted[axis] = (coords[axis] + step) % dim
                out.add(self.rank_of(tuple(shifted)))
        out.discard(node)
        return tuple(sorted(out))

    def hop_distance(self, a: int, b: int) -> int:
        """Minimal hops between two nodes (per-dimension wrap distance)."""
        ca, cb = self.coordinates(a), self.coordinates(b)
        total = 0
        for x, y, dim in zip(ca, cb, self.dims):
            d = abs(x - y)
            total += min(d, dim - d)
        return total

    @property
    def max_hops(self) -> int:
        """Network diameter."""
        return sum(d // 2 for d in self.dims)

    @property
    def average_hops(self) -> float:
        """Mean hop distance between two uniformly random nodes.

        Per dimension of size k the mean wrap distance is
        ``(k**2 // 4) / k`` (exact for both parities); dimensions add.
        """
        return sum((d * d // 4) / d for d in self.dims)
