"""Version information for the repro package."""

__version__ = "1.0.0"

#: Paper this package reproduces.
PAPER = (
    "Randles et al., 'Massively Parallel Model of Extended Memory Use in "
    "Evolutionary Game Dynamics', IPDPS 2013, doi:10.1109/ipdps.2013.102"
)
