"""Execution backends and their registry.

A backend is *how* an evolutionary run executes — the science is fixed by
the :class:`~repro.core.EvolutionConfig` alone.  Every backend consumes the
same Nature-Agent decision streams, so for deterministic configurations the
``baseline``, ``serial``, ``event`` and ``multiprocess`` backends follow
bit-identical trajectories for the same seed (pinned by the test suite),
and the ``des`` backend reproduces the same event sequence through the
simulated machine.

Registering a backend::

    @register_backend
    @dataclass
    class MyBackend(Backend):
        name = "mine"
        summary = "my exotic execution substrate"

        def run(self, config, population=None):
            ...

    Simulation(config, backend="mine").run()
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from ..core.baseline import run_baseline
from ..core.config import EvolutionConfig
from ..core.engine import FitnessEngine, is_integer_payoff
from ..core.evolution import EvolutionResult, run_event_driven, run_serial
from ..core.payoff_cache import PayoffCache
from ..core.population import Population
from ..core.strategy import Strategy
from ..ensemble import run_ensemble_detailed
from ..errors import ConfigurationError
from ..xp import get_array_backend
from .report import BackendReport

if TYPE_CHECKING:  # pragma: no cover
    from ..framework.config import ParallelConfig

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "BaselineBackend",
    "SerialBackend",
    "EventBackend",
    "EnsembleBackend",
    "MultiprocessBackend",
    "DESBackend",
]


class Backend(ABC):
    """One way of executing an :class:`~repro.core.EvolutionConfig`.

    Subclasses are dataclasses whose fields are the backend's options;
    :class:`~repro.api.Simulation` instantiates them from ``**backend_opts``.
    """

    #: Registry key (``Simulation(config, backend=<name>)``).
    name: ClassVar[str]
    #: One-line description shown by ``python -m repro backends``.
    summary: ClassVar[str]
    #: Whether :meth:`run` accepts a caller-supplied initial population
    #: (checkpoint resume relies on this).
    supports_initial_population: ClassVar[bool] = True
    #: Whether :meth:`run` honours structured (non-well-mixed) populations.
    #: Enforced by the base :meth:`validate`, so overriders must call
    #: ``super().validate(config)``.
    supports_structures: ClassVar[bool] = True

    @abstractmethod
    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        """Execute the run and return its result (``backend_report`` set).

        Implementations call :meth:`validate` first so the guard holds for
        direct ``run()`` use too, not just through :class:`Simulation`.
        """

    def validate(self, config: EvolutionConfig) -> None:
        """Reject configurations this backend cannot execute (fail fast).

        The base implementation enforces :attr:`supports_structures`;
        overriders extend it via ``super().validate(config)``.
        """
        if not self.supports_structures and not config.is_well_mixed:
            raise ConfigurationError(
                f"the {self.name} backend supports well-mixed populations "
                f"only (got structure={config.canonical_structure()!r}); "
                "use the serial, event or multiprocess backend for "
                "structured populations"
            )

    def options(self) -> dict[str, Any]:
        """The option values this backend instance was built with."""
        return {f.name: getattr(self, f.name) for f in fields(self)}  # type: ignore[arg-type]

    def _report(self, result: EvolutionResult, **extra: Any) -> EvolutionResult:
        """Attach the :class:`BackendReport` envelope to ``result``."""
        extra.setdefault(
            "resumed_from_generation", result.resumed_from_generation
        )
        result.backend_report = BackendReport(
            backend=self.name,
            wallclock_seconds=result.wallclock_seconds,
            options=self.options(),
            structure=result.config.canonical_structure(),
            **extra,
        )
        return result


_REGISTRY: dict[str, type[Backend]] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Register a :class:`Backend` subclass under its ``name`` (decorator)."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend class {cls.__name__} must define a non-empty `name`"
        )
    if name in _REGISTRY:
        raise ConfigurationError(f"duplicate backend name {name!r}")
    _REGISTRY[name] = cls
    return cls


def get_backend(name: str) -> type[Backend]:
    """Look up a registered backend class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown backend {name!r}; registered: {known}"
        ) from None


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def resolve_backend(
    backend: "str | type[Backend] | Backend", backend_opts: dict[str, Any]
) -> Backend:
    """Turn a name/class/instance plus options into a backend instance."""
    if isinstance(backend, Backend):
        if backend_opts:
            raise ConfigurationError(
                "backend_opts cannot be combined with a ready-made backend "
                f"instance (got {sorted(backend_opts)})"
            )
        return backend
    cls = get_backend(backend) if isinstance(backend, str) else backend
    return cls(**backend_opts)


def _require_positive_batch(batch_size: int) -> None:
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )


def _require_sampled_deterministic(config: EvolutionConfig, name: str) -> None:
    """Reject configs whose fitness the backend cannot evaluate faithfully.

    These backends hold a bit-parity-only contract with the reference
    drivers, so they cannot adopt the batched sampled mode (whose contract
    is statistical); the message routes noisy science to the backends that
    can run it.
    """
    if config.noise > 0.0 or config.mixed_strategies or config.expected_fitness:
        raise ConfigurationError(
            f"the {name} backend supports deterministic pure-strategy "
            "configurations only (no noise, no mixed strategies, sampled "
            "fitness); for stochastic science use the event or serial "
            "backend — or sampled_batched=True (CLI --sampled-batched) "
            "with the event, serial, or ensemble backend for the "
            "vectorised sampled-fitness fast path"
        )


# -- built-in backends --------------------------------------------------------


@register_backend
@dataclass
class BaselineBackend(Backend):
    """The paper's pre-SSet state of the art (Section IV.A)."""

    name: ClassVar[str] = "baseline"
    summary: ClassVar[str] = (
        "one agent per strategy, every game replayed serially (no cache)"
    )

    supports_structures: ClassVar[bool] = False

    def validate(self, config: EvolutionConfig) -> None:
        super().validate(config)
        # run_baseline replays plain noiseless games, so expected-fitness
        # configs would silently follow a different (noise-free) trajectory.
        _require_sampled_deterministic(config, self.name)

    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        self.validate(config)
        return self._report(run_baseline(config, population))


@register_backend
@dataclass
class SerialBackend(Backend):
    """Faithful generation-by-generation reference driver."""

    name: ClassVar[str] = "serial"
    summary: ClassVar[str] = (
        "faithful per-generation loop with SSet histogram + payoff cache"
    )

    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        self.validate(config)
        return self._report(run_serial(config, population))


@register_backend
@dataclass
class EventBackend(Backend):
    """Fast-forward driver: identical trajectory, vectorised event scan."""

    name: ClassVar[str] = "event"
    summary: ClassVar[str] = (
        "event-driven fast-forward (default; ~1000x serial, same trajectory)"
    )

    #: Generations scanned per vectorised event-flag batch.
    batch_size: int = 1 << 16

    def validate(self, config: EvolutionConfig) -> None:
        super().validate(config)
        _require_positive_batch(self.batch_size)

    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        self.validate(config)
        return self._report(
            run_event_driven(config, population, batch_size=self.batch_size)
        )


@register_backend
@dataclass
class EnsembleBackend(Backend):
    """Lane-batched ensemble execution (:mod:`repro.ensemble`).

    One run is a one-lane ensemble; the real payoff comes through
    :func:`repro.api.run_sweep`, which hands the *whole* config list to
    :meth:`run_many` so same-science replicates advance together over one
    shared strategy pool and payoff matrix.  Graph-structured lanes ride
    the same fast path as well-mixed ones: their learner-then-neighbor PC
    draws decode in bulk off the raw Philox stream and each generation's
    event fitness is one flat CSR gather across all event lanes.
    Sampled-stochastic lanes are accepted when the config opts in with
    ``sampled_batched=True``: each generation's event lanes fuse their
    sampled games into one vectorised kernel call over per-lane dedicated
    streams (bit-identical to the same-seed serial ``sampled_batched``
    run; statistically equivalent to the scalar legacy path).  Every
    lane's trajectory is bit-identical to the same-seed serial ``event``
    run (pinned by the lane-parity tests); execution metadata
    (``cache_hits``/``cache_misses`` and the backend report's
    ``lanes``/``shared_engine``) reflects the shared-engine accounting
    instead of per-run engines.
    """

    name: ClassVar[str] = "ensemble"
    summary: ClassVar[str] = (
        "lane-batched ensemble: same-science replicates as one array program"
    )

    #: Generations scanned per vectorised event-flag batch.
    batch_size: int = 1 << 16
    #: Array-namespace override for the shared-engine groups ("numpy" /
    #: "cupy" / "jax"); ``None`` defers to each config's ``array_backend``
    #: field.  An unavailable accelerator stack falls back to NumPy and the
    #: backend report's ``array_backend`` records what actually ran.
    array_backend: str | None = None

    def validate(self, config: EvolutionConfig) -> None:
        super().validate(config)
        _require_positive_batch(self.batch_size)
        if self.array_backend is not None:
            # Resolve eagerly: a typo'd name fails here, an absent
            # accelerator stack falls back cleanly at engine construction.
            get_array_backend(self.array_backend)
        if config.is_stochastic and not config.sampled_batched:
            raise ConfigurationError(
                "the ensemble backend supports deterministic and expected-"
                "fitness configurations only (sampled-stochastic fitness "
                "draws one fresh game per probe and cannot be lane-batched "
                "without changing the trajectory); opt in to the batched "
                "sampled engine with sampled_batched=True (CLI "
                "--sampled-batched; statistically equivalent to the scalar "
                "path, bit-reproducible per seed), or use the event or "
                "serial backend"
            )

    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        self.validate(config)
        return self.run_many([config], [population])[0]

    def run_many(
        self,
        configs: list[EvolutionConfig],
        populations: list[Population | None] | None = None,
    ) -> list[EvolutionResult]:
        """Execute many runs lane-batched; results in config order."""
        run_configs = list(configs)
        for config in run_configs:
            self.validate(config)
        results, metas = run_ensemble_detailed(
            run_configs,
            populations,
            batch_size=self.batch_size,
            array_backend=self.array_backend,
        )
        return [
            self._report(
                result,
                lanes=meta["lanes"],
                shared_engine=meta["shared_engine"],
                array_backend=meta.get("array_backend"),
            )
            for result, meta in zip(results, metas)
        ]


class _PooledFitnessEngine(FitnessEngine):
    """Deterministic dense engine whose eager fills fan over a process pool.

    The multiprocess backend's fitness path: the interned sid arrays and
    the dense payoff matrix live on the parent exactly as in the serial
    engine, while each new strategy's row/column evaluation (focal vs every
    live strategy) is chunked over worker processes.  Valid only where the
    backend already restricts itself — the fully deterministic regime with
    integer payoff matrices, where the round-summing pooled kernel is
    float-exact and hence value-identical to the cycle-exact serial fill.
    """

    def __init__(self, kernel, **engine_kwargs: Any) -> None:
        super().__init__(**engine_kwargs)
        self._kernel = kernel

    def _fill_deterministic(self, sid: int) -> None:
        live = self.pool.ordered_sids()
        focal = self.pool.strategy(sid)
        targets = [self.pool.strategy(int(j)) for j in live]
        to_focal, to_targets = self._kernel.payoffs_against(focal, targets)
        self._paymat[sid, live] = to_focal
        self._paymat[live, sid] = to_targets
        self.misses += len(live)


class _PooledPayoffCache(PayoffCache):
    """Payoff cache whose misses are fanned over a process pool.

    Only valid in the fully deterministic regime (pure strategies, no noise,
    sampled — not Markov-expected — fitness), where the vectorised game
    kernel is value-identical to the serial cycle-exact engine, so the
    trajectory stays on the reference path.  Reuses the base cache's
    probe/fill bookkeeping; only the batch evaluator differs.
    """

    def __init__(self, kernel, rounds: int, payoff) -> None:
        super().__init__(rounds=rounds, payoff=payoff)
        self._kernel = kernel

    @property
    def _supports_batch(self) -> bool:
        return True

    def _evaluate_missing(
        self, a: Strategy, targets: list[Strategy]
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._kernel.payoffs_against(a, targets)


@register_backend
@dataclass
class MultiprocessBackend(Backend):
    """Event-driven loop with fitness fan-out over a process pool.

    The runnable counterpart of the paper's thread level: PC-event fitness
    evaluations (focal strategy vs every distinct strategy present) are
    chunked over worker processes via :class:`repro.runtime.ParallelKernel`.
    Deterministic configurations only; the trajectory is identical to the
    ``event``/``serial`` backends for integer-valued payoff matrices (the
    paper's), pinned by the tests.
    """

    name: ClassVar[str] = "multiprocess"
    summary: ClassVar[str] = (
        "event-driven loop, fitness games fanned over a process pool"
    )

    #: Worker processes for the fitness fan-out.
    workers: int = 2
    #: Generations scanned per vectorised event-flag batch.
    batch_size: int = 1 << 16

    def validate(self, config: EvolutionConfig) -> None:
        super().validate(config)
        _require_sampled_deterministic(config, self.name)
        _require_positive_batch(self.batch_size)
        if not is_integer_payoff(config.payoff):
            # The pooled kernel sums payoffs round by round while the serial
            # cache multiplies cycle sums; only integer payoffs make both
            # float-exact, which the identical-trajectory contract needs.
            raise ConfigurationError(
                "the multiprocess backend requires an integer-valued payoff "
                "matrix to guarantee the serial-identical trajectory (got "
                f"{list(config.payoff.vector)}); use the event backend for "
                "non-integer payoffs"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )

    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        from ..runtime.executor import ParallelKernel

        self.validate(config)
        with ParallelKernel(
            n_workers=self.workers, rounds=config.rounds, payoff=config.payoff
        ) as kernel:
            if config.engine:
                # The engine's sid arrays + dense matrix, with the fill
                # evaluations fanned over the pool (PR 3 follow-on; the
                # legacy pooled PayoffCache remains the engine=False path).
                engine = _PooledFitnessEngine(
                    kernel,
                    memory_steps=config.memory_steps,
                    rounds=config.rounds,
                    payoff=config.payoff,
                    capacity=max(64, config.n_ssets + 2),
                    pool_cap=config.engine_pool_cap,
                )
                result = run_event_driven(
                    config,
                    population,
                    batch_size=self.batch_size,
                    evaluator=engine,
                )
            else:
                cache = _PooledPayoffCache(
                    kernel, rounds=config.rounds, payoff=config.payoff
                )
                result = run_event_driven(
                    config, population, batch_size=self.batch_size, cache=cache
                )
        return self._report(result, workers=self.workers)


@register_backend
@dataclass
class DESBackend(Backend):
    """The paper's parallel algorithm on the simulated Blue Gene machine.

    Wraps :func:`repro.framework.driver.run_parallel_simulation` in
    executable mode: real strategies and fitness flow through the
    discrete-event MPI simulator, and the simulated timing (virtual
    makespan, compute/comm split, decomposition ratio) lands in the
    :class:`BackendReport` instead of a separate ``SimulationReport`` world.
    The result carries no intermediate snapshots — the DES records events
    and the final population only.
    """

    name: ClassVar[str] = "des"
    summary: ClassVar[str] = (
        "simulated-machine run (DES MPI): science + virtual Blue Gene timing"
    )
    supports_initial_population: ClassVar[bool] = False
    supports_structures: ClassVar[bool] = False

    #: Simulated MPI ranks, including the Nature Agent on rank 0.
    n_ranks: int = 8
    #: Full placement/machine control; overrides ``n_ranks`` when given.
    parallel: "ParallelConfig | None" = None

    def _parallel_config(self) -> "ParallelConfig":
        from ..framework.config import ParallelConfig

        if self.parallel is not None:
            if not self.parallel.executable:
                raise ConfigurationError(
                    "the des backend needs an executable ParallelConfig "
                    "(cost-only runs produce no science); use "
                    "repro.framework.run_parallel_simulation directly for "
                    "timing studies"
                )
            return self.parallel
        return ParallelConfig(n_ranks=self.n_ranks)

    def validate(self, config: EvolutionConfig) -> None:
        # supports_structures=False: the parallel decomposition broadcasts
        # the global histogram; a graph-structured fitness would need
        # neighborhood-aware sharding.
        super().validate(config)
        # The DES workers evaluate plain noiseless payoffs, so noisy or
        # expected-fitness configs would silently lose their noise model.
        _require_sampled_deterministic(config, self.name)
        if config.record_every > 0:
            raise ConfigurationError(
                "the des backend records events and the final population "
                "only; record_every is not supported — use the serial or "
                "event backend for snapshot rasters"
            )
        self._parallel_config()

    def run(
        self, config: EvolutionConfig, population: Population | None = None
    ) -> EvolutionResult:
        from ..framework.driver import run_parallel_simulation

        self.validate(config)
        if population is not None:
            raise ConfigurationError(
                "the des backend derives its initial population from the "
                "seed and cannot resume from a supplied population"
            )
        started = time.perf_counter()
        parallel = self._parallel_config()
        des = run_parallel_simulation(config, parallel)
        result = EvolutionResult(
            config=config,
            population=des.final_population(),
            # The DES always traces events internally (the science flows
            # through them); record_events only controls what the result
            # retains, matching the serial drivers.
            events=list(des.events) if config.record_events else [],
        )
        result.n_pc_events = sum(1 for e in des.events if e.kind == "pc")
        result.n_adoptions = sum(
            1 for e in des.events if e.kind == "pc" and e.applied
        )
        result.n_mutations = sum(1 for e in des.events if e.kind == "mutation")
        result.generations_run = config.generations
        result.wallclock_seconds = time.perf_counter() - started
        return self._report(
            result,
            n_ranks=parallel.n_ranks,
            ssets_per_worker=des.decomposition.ratio,
            makespan_seconds=des.makespan,
            compute_seconds=des.compute_seconds,
            comm_seconds=des.comm_seconds,
        )
