"""The unified simulation front-end.

One call shape for every execution substrate::

    from repro import Simulation

    result = Simulation(config).run()                      # event-driven
    result = Simulation(config, backend="serial").run()    # reference loop
    result = Simulation(config, backend="multiprocess", workers=4).run()
    result = Simulation(config, backend="des", n_ranks=9).run()

``.run()`` always returns an :class:`~repro.core.EvolutionResult` whose
``backend_report`` says how the run executed.  Checkpointing is wired
through :mod:`repro.io.checkpoint`: pass ``checkpoint_path`` to persist the
final population, and ``resume=True`` to continue from a previously saved
one (backends that derive their own initial state, like ``des``, do not
support resume).
"""

from __future__ import annotations

from pathlib import Path

from ..core.config import EvolutionConfig
from ..core.evolution import EvolutionResult
from ..core.population import Population
from ..errors import CheckpointError, ConfigurationError
from ..io.checkpoint import load_checkpoint, save_population
from .backends import Backend, resolve_backend

__all__ = ["Simulation"]


class Simulation:
    """A configured run bound to one execution backend.

    Parameters
    ----------
    config:
        The science (population, dynamics, seed).
    backend:
        Registry name, :class:`Backend` subclass, or ready-made instance.
    initial_population:
        Start from this population instead of the seed-derived random one.
    checkpoint_path:
        After a successful run, save the final population here (``.npz``).
    resume:
        Load ``checkpoint_path`` as the initial population when the file
        exists (a missing file silently starts fresh, so restartable jobs
        need no first-run special case).  Note that the Nature Agent's
        decision streams derive from ``config.seed`` alone: resuming with
        an unchanged seed replays the same event schedule over the evolved
        population.  For a statistically independent continuation, give
        each leg its own seed (``config.with_updates(seed=...)``).
    **backend_opts:
        Forwarded to the backend class (e.g. ``workers=4``,
        ``batch_size=...``, ``n_ranks=9``).
    """

    def __init__(
        self,
        config: EvolutionConfig,
        backend: str | type[Backend] | Backend = "event",
        *,
        initial_population: Population | None = None,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        **backend_opts: object,
    ) -> None:
        self.config = config
        self.backend = resolve_backend(backend, dict(backend_opts))
        self.initial_population = initial_population
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.resume = resume
        if resume and self.checkpoint_path is None:
            raise ConfigurationError("resume=True requires a checkpoint_path")

    # -- checkpoint plumbing --------------------------------------------------

    def _resolve_initial_population(self) -> Population | None:
        population = self.initial_population
        if (
            population is None
            and self.resume
            and self.checkpoint_path is not None
            and self.checkpoint_path.exists()
        ):
            population, saved_structure = load_checkpoint(self.checkpoint_path)
            # Legacy checkpoints (no structure field) were written by
            # well-mixed-only code; treat them as well-mixed.
            saved = saved_structure if saved_structure is not None else "well-mixed"
            expected = self.config.canonical_structure()
            if saved != expected:
                raise CheckpointError(
                    f"checkpoint {self.checkpoint_path} was written under "
                    f"structure {saved!r}, config wants {expected!r}"
                )
        if population is None:
            return None
        if not self.backend.supports_initial_population:
            raise ConfigurationError(
                f"the {self.backend.name!r} backend does not support "
                "initial populations (checkpoint resume unavailable)"
            )
        if population.memory_steps != self.config.memory_steps:
            raise CheckpointError(
                f"population has memory_steps={population.memory_steps}, "
                f"config wants {self.config.memory_steps}"
            )
        if len(population) != self.config.n_ssets:
            raise CheckpointError(
                f"population has {len(population)} SSets, "
                f"config wants {self.config.n_ssets}"
            )
        return population

    # -- execution -------------------------------------------------------------

    def run(self) -> EvolutionResult:
        """Execute the run on the bound backend."""
        population = self._resolve_initial_population()
        result = self.backend.run(self.config, population)
        if self.checkpoint_path is not None:
            save_population(
                result.population,
                self.checkpoint_path,
                structure=self.config.canonical_structure(),
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulation(backend={self.backend.name!r}, "
            f"config={self.config!r})"
        )
