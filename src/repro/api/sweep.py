"""Batch execution of independent runs over a process pool.

:func:`run_sweep` is the workload front-end: give it any iterable of
configurations and it executes each through the unified backend machinery,
optionally fanning the runs over worker processes.  Results are returned in
config order and are identical to a serial ``[Simulation(c).run() for c in
configs]`` loop for any worker count (each run is independent and
deterministic given its seed) — pinned by the tests.

Seed derivation: pass ``base_seed`` to overwrite every config's seed with a
deterministic, statistically independent child derived through
:class:`~repro.rng.SeedSequenceTree` — the standard way to build an
N-replicate ensemble from one master seed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.config import EvolutionConfig
from ..core.evolution import EvolutionResult
from ..errors import ConfigurationError
from ..rng import SeedSequenceTree
from .backends import Backend, resolve_backend

__all__ = ["run_sweep", "derive_sweep_seeds"]


def derive_sweep_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` independent child seeds of ``base_seed`` (stable across runs)."""
    if n < 0:
        raise ConfigurationError(f"cannot derive {n} seeds")
    tree = SeedSequenceTree(base_seed)
    return [
        int(tree.seed_sequence("sweep", i).generate_state(1, np.uint64)[0])
        for i in range(n)
    ]


def _run_one(config: EvolutionConfig, backend: Backend) -> EvolutionResult:
    """Worker entry point: one independent run (must stay module-level).

    Backends validate inside ``run()`` (their documented contract), so no
    separate validate pass is needed here.
    """
    return backend.run(config)


def run_sweep(
    configs: Iterable[EvolutionConfig],
    backend: str | type[Backend] | Backend = "event",
    *,
    workers: int | None = None,
    on_result: Callable[[int, EvolutionResult], None] | None = None,
    base_seed: int | None = None,
    **backend_opts: object,
) -> list[EvolutionResult]:
    """Run every config and return the results in config order.

    Parameters
    ----------
    configs:
        The runs.  Each is executed independently (no shared state).
    backend:
        Backend for every run (name, class, or instance).  Instances must be
        picklable when ``workers > 1``; the built-ins are.
    workers:
        Process-pool size for the fan-out.  ``None``/``0``/``1`` runs the
        sweep serially in-process.  Nesting note: combining a parallel sweep
        with the ``multiprocess`` backend multiplies process counts.
    on_result:
        Callback invoked in the parent process as ``on_result(index,
        result)``, in config order, as results arrive.
    base_seed:
        When given, replaces each config's seed with the ``i``-th child of
        :func:`derive_sweep_seeds` — a one-liner ensemble builder.
    **backend_opts:
        Forwarded to the backend class (as in :class:`~repro.api.Simulation`).
        A backend option named ``workers`` (the multiprocess backend's pool
        size) collides with this function's own ``workers`` keyword — pass a
        ready-made instance instead:
        ``run_sweep(configs, backend=MultiprocessBackend(workers=8))``.
    """
    run_configs: Sequence[EvolutionConfig] = list(configs)
    resolved = resolve_backend(backend, dict(backend_opts))
    if base_seed is not None:
        seeds = derive_sweep_seeds(base_seed, len(run_configs))
        run_configs = [
            c.with_updates(seed=s) for c, s in zip(run_configs, seeds)
        ]

    results: list[EvolutionResult] = []
    if workers is None or workers <= 1 or len(run_configs) <= 1:
        for i, config in enumerate(run_configs):
            result = _run_one(config, resolved)
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results

    pool_size = min(workers, len(run_configs))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        futures = [
            pool.submit(_run_one, config, resolved) for config in run_configs
        ]
        for i, future in enumerate(futures):
            result = future.result()
            if on_result is not None:
                on_result(i, result)
            results.append(result)
    return results
