"""Batch execution of independent runs over a process pool.

:func:`run_sweep` is the workload front-end: give it any iterable of
configurations and it executes each through the unified backend machinery,
optionally fanning the runs over worker processes.  Results are returned in
config order and follow trajectories identical to a serial
``[Simulation(c).run() for c in configs]`` loop for any worker count (each
run is independent and deterministic given its seed) — pinned by the tests.

Two ensemble-scale optimisations live here:

* **Lane batching** — ``backend="ensemble"`` hands the whole config list to
  :meth:`~repro.api.EnsembleBackend.run_many`, which advances same-science
  replicates together over one shared strategy pool and payoff matrix
  (:mod:`repro.ensemble`) — graph-structured configs included, via the
  structure layer's CSR adjacency; with ``workers`` the lanes are chunked
  over the pool, composing the two levels of parallelism.

* **Shared engine pairs** — on the legacy per-run path, deterministic-regime
  runs can share one read-only store of evaluated strategy-pair payoffs
  (:func:`repro.core.engine.shared_engine_pairs`): the values are pure
  functions of the strategy tables plus ``(rounds, payoff)``, so later runs
  (and each pool worker's later tasks) stop re-deriving identical matrix
  entries.  Trajectories are unchanged; only the ``cache_misses``
  evaluation counters shrink relative to an isolated ``Simulation`` run.
  By default sharing turns on only where reuse is structural — memory-one
  sweeps, whose 16-strategy space every run revisits; deeper memories draw
  mostly-distinct random mutants, and the per-pair store bookkeeping would
  cost more than the re-derivations it saves (``share_engine=True``
  forces it on for workloads known to repeat strategies).

Seed derivation: pass ``base_seed`` to overwrite every config's seed with a
deterministic, statistically independent child derived through
:class:`~repro.rng.SeedSequenceTree` — the standard way to build an
N-replicate ensemble from one master seed.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.config import EvolutionConfig
from ..core.engine import enable_engine_pair_sharing, shared_engine_pairs
from ..core.evolution import EvolutionResult
from ..core.progress import progress_callback, progress_scope
from ..errors import ConfigurationError
from ..rng import SeedSequenceTree
from .backends import Backend, EnsembleBackend, resolve_backend

__all__ = ["run_sweep", "derive_sweep_seeds"]


def derive_sweep_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` independent child seeds of ``base_seed`` (stable across runs)."""
    if n < 0:
        raise ConfigurationError(f"cannot derive {n} seeds")
    tree = SeedSequenceTree(base_seed)
    return [
        int(tree.seed_sequence("sweep", i).generate_state(1, np.uint64)[0])
        for i in range(n)
    ]


def _run_one(config: EvolutionConfig, backend: Backend) -> EvolutionResult:
    """Worker entry point: one independent run (must stay module-level).

    Backends validate inside ``run()`` (their documented contract), so no
    separate validate pass is needed here.
    """
    return backend.run(config)


def _run_chunk(
    configs: list[EvolutionConfig], backend: EnsembleBackend
) -> list[EvolutionResult]:
    """Worker entry point: one lane-batched chunk (must stay module-level)."""
    return backend.run_many(configs)


def _chunk_ranges(n: int, chunks: int) -> list[tuple[int, int]]:
    """``n`` items into ``chunks`` contiguous, near-equal ranges."""
    size, extra = divmod(n, chunks)
    ranges = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        ranges.append((start, end))
        start = end
    return ranges


def _run_sweep_ensemble(
    run_configs: Sequence[EvolutionConfig],
    backend: EnsembleBackend,
    workers: int | None,
    on_result: Callable[[int, EvolutionResult], None] | None,
) -> list[EvolutionResult]:
    """Lane-batched fast path: whole chunks of the sweep run as single
    array programs (results still arrive in config order, per chunk)."""
    if not run_configs:
        return []
    if workers is None or workers <= 1 or len(run_configs) <= 1:
        results = backend.run_many(list(run_configs))
    else:
        pool_size = min(workers, len(run_configs))
        ranges = _chunk_ranges(len(run_configs), pool_size)
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                pool.submit(_run_chunk, list(run_configs[lo:hi]), backend)
                for lo, hi in ranges
            ]
            results = [r for future in futures for r in future.result()]
    if on_result is not None:
        for i, result in enumerate(results):
            on_result(i, result)
    return results


def _dedupe_key(config: EvolutionConfig) -> str:
    """Canonical identity of one run: the full config dict, seed included.

    Uses :meth:`EvolutionConfig.to_dict` so structure instances collapse to
    their canonical spec string — two configs collide iff they describe the
    bit-identical run.
    """
    return json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))


def _auto_share(configs: Sequence[EvolutionConfig]) -> bool:
    """Default sharing rule: on iff every run is memory-one (16 pure
    strategies — every sweep revisits the same pairs, so reuse is
    guaranteed rather than incidental)."""
    return bool(configs) and all(c.memory_steps == 1 for c in configs)


def run_sweep(
    configs: Iterable[EvolutionConfig],
    backend: str | type[Backend] | Backend = "event",
    *,
    workers: int | None = None,
    on_result: Callable[[int, EvolutionResult], None] | None = None,
    base_seed: int | None = None,
    share_engine: bool | None = None,
    dedupe: bool = True,
    **backend_opts: object,
) -> list[EvolutionResult]:
    """Run every config and return the results in config order.

    Parameters
    ----------
    configs:
        The runs.  Each is executed independently (no shared state beyond
        read-only payoff-pair reuse, which cannot alter trajectories).
    backend:
        Backend for every run (name, class, or instance).  Instances must be
        picklable when ``workers > 1``; the built-ins are.  The
        ``ensemble`` backend takes the lane-batched fast path: the whole
        sweep (or each worker's chunk) executes as one array program.
    workers:
        Process-pool size for the fan-out.  ``None``/``0``/``1`` runs the
        sweep serially in-process.  Nesting note: combining a parallel sweep
        with the ``multiprocess`` backend multiplies process counts.
    on_result:
        Callback invoked in the parent process as ``on_result(index,
        result)``, in config order, as results arrive (the ensemble fast
        path delivers a chunk's results when the chunk completes).
    base_seed:
        When given, replaces each config's seed with the ``i``-th child of
        :func:`derive_sweep_seeds` — a one-liner ensemble builder.
    share_engine:
        Share deterministic pair evaluations across the sweep's runs (see
        the module docstring).  ``None`` (default) auto-enables for
        memory-one sweeps only; ``True``/``False`` force it.
    dedupe:
        Execute bit-identical ``(config, seed)`` entries once and fan the
        *same* result object out to every duplicate position (default on —
        every run is deterministic given its config, so re-executing a
        duplicate can only reproduce the identical trajectory).  When
        duplicates are collapsed, ``on_result`` fires once per sweep
        position — duplicates included — in config order after the unique
        runs finish.  ``dedupe=False`` restores independent execution
        (distinct result objects per position, e.g. for timing studies).
    **backend_opts:
        Forwarded to the backend class (as in :class:`~repro.api.Simulation`).
        A backend option named ``workers`` (the multiprocess backend's pool
        size) collides with this function's own ``workers`` keyword — pass a
        ready-made instance instead:
        ``run_sweep(configs, backend=MultiprocessBackend(workers=8))``.
    """
    run_configs: Sequence[EvolutionConfig] = list(configs)
    resolved = resolve_backend(backend, dict(backend_opts))
    if base_seed is not None:
        seeds = derive_sweep_seeds(base_seed, len(run_configs))
        run_configs = [
            c.with_updates(seed=s) for c, s in zip(run_configs, seeds)
        ]

    if dedupe and len(run_configs) > 1:
        keys = [_dedupe_key(c) for c in run_configs]
        first_index: dict[str, int] = {}
        unique: list[EvolutionConfig] = []
        index_map: list[int] = []
        for config, key in zip(run_configs, keys):
            position = first_index.get(key)
            if position is None:
                position = len(unique)
                first_index[key] = position
                unique.append(config)
            index_map.append(position)
        if len(unique) < len(run_configs):
            unique_results = run_sweep(
                unique,
                resolved,
                workers=workers,
                share_engine=share_engine,
                dedupe=False,
            )
            results = [unique_results[j] for j in index_map]
            if on_result is not None:
                for i, result in enumerate(results):
                    on_result(i, result)
            return results

    if isinstance(resolved, EnsembleBackend):
        return _run_sweep_ensemble(run_configs, resolved, workers, on_result)

    share = share_engine if share_engine is not None else _auto_share(run_configs)
    results: list[EvolutionResult] = []
    if workers is None or workers <= 1 or len(run_configs) <= 1:
        # In-process path: successive deterministic runs share evaluated
        # payoff pairs instead of re-deriving identical matrix entries.
        # Single-run drivers stamp ticks with run_index 0, so an installed
        # progress scope gets each run's ticks remapped to its sweep index
        # (the ensemble driver does the equivalent for its lanes).
        outer_progress = progress_callback()
        context = shared_engine_pairs() if share else nullcontext()
        with context:
            for i, config in enumerate(run_configs):
                if outer_progress is not None:
                    scope = progress_scope(
                        lambda tick, _i=i, _cb=outer_progress: _cb(
                            tick.with_run_index(_i)
                        )
                    )
                else:
                    scope = nullcontext()
                with scope:
                    result = _run_one(config, resolved)
                if on_result is not None:
                    on_result(i, result)
                results.append(result)
        return results

    pool_size = min(workers, len(run_configs))
    # Each worker process keeps its own shared pair store across the runs
    # it executes (the PR 3 follow-on: workers stop re-deriving identical
    # matrices); the store dies with the pool.
    with ProcessPoolExecutor(
        max_workers=pool_size,
        initializer=enable_engine_pair_sharing if share else None,
    ) as pool:
        futures = [
            pool.submit(_run_one, config, resolved) for config in run_configs
        ]
        for i, future in enumerate(futures):
            result = future.result()
            if on_result is not None:
                on_result(i, result)
            results.append(result)
    return results
