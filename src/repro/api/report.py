"""Backend execution metadata attached to every :class:`EvolutionResult`.

Before the unified front-end, timing/decomposition metadata lived in a
separate world per entry point (the DES returned a ``SimulationReport``,
the serial drivers only a wallclock).  :class:`BackendReport` is the common
envelope: every backend fills in the fields it can measure and leaves the
rest ``None``, so callers inspect one type regardless of how a run was
executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["BackendReport"]


@dataclass(frozen=True)
class BackendReport:
    """How a run was executed, and what it cost.

    Parameters
    ----------
    backend:
        Registry name of the backend that produced the result.
    wallclock_seconds:
        Real host time spent inside the backend.
    options:
        The backend options the run was configured with (e.g. ``workers``,
        ``batch_size``, ``n_ranks``) — whatever ``Simulation(**backend_opts)``
        forwarded.
    structure:
        Canonical population-structure spec the run executed under
        (``"well-mixed"``, ``"ring:k=4"``, ...).
    workers:
        Process-pool size for backends that fan work over processes.
    lanes:
        Number of replicates the ``ensemble`` backend executed together in
        this run's lane-batched group (1 = the run was its own group).
    shared_engine:
        Shared-engine counters of the lane-batched group (distinct
        strategies, pool capacity, pair evaluations and kernel calls, plus
        the paymat memory accounting: ``paymat_bytes`` /
        ``peak_paymat_bytes`` / ``paymat_block`` / ``blocks_resident`` /
        ``blocks_evicted`` / ``block_fills``) — ``None`` when the group ran
        on per-lane evaluators.
    array_backend:
        Array-namespace provenance of the lane-batched group
        (:meth:`repro.xp.ArrayBackend.describe`): ``"numpy"``, ``"cupy"``,
        ``"jax"``, or ``"numpy (<requested> unavailable: ...)"`` after a
        clean fallback.  ``None`` for paths that never touch the seam.
    resumed_from_generation:
        Generation the run was restored from when a mid-run checkpoint was
        found (:mod:`repro.core.runstate`); ``None`` for an uninterrupted
        run.  Provenance only — the result payload is bit-identical either
        way.
    n_ranks:
        Simulated MPI ranks (DES backend; includes the Nature Agent).
    ssets_per_worker:
        Decomposition ratio R of the simulated run (the paper's Table VI
        knob).
    makespan_seconds:
        Virtual wallclock of the simulated machine (DES backend).
    compute_seconds:
        Aggregate simulated computation time across ranks (DES backend).
    comm_seconds:
        Aggregate simulated communication + exposed sync (DES backend).
    """

    backend: str
    wallclock_seconds: float
    options: dict[str, Any] = field(default_factory=dict)
    structure: str | None = None
    workers: int | None = None
    lanes: int | None = None
    shared_engine: dict[str, int] | None = None
    array_backend: str | None = None
    resumed_from_generation: int | None = None
    n_ranks: int | None = None
    ssets_per_worker: float | None = None
    makespan_seconds: float | None = None
    compute_seconds: float | None = None
    comm_seconds: float | None = None

    def summary(self) -> str:
        """One-line human description of the execution."""
        parts = [f"backend={self.backend}", f"wallclock={self.wallclock_seconds:.3f}s"]
        if self.structure is not None and self.structure != "well-mixed":
            parts.append(f"structure={self.structure}")
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        if self.lanes is not None:
            parts.append(f"lanes={self.lanes}")
        if self.shared_engine is not None:
            parts.append(
                f"shared-engine={self.shared_engine.get('distinct', 0)} "
                "distinct"
            )
        if self.array_backend is not None and self.array_backend != "numpy":
            parts.append(f"array-backend={self.array_backend}")
        if self.resumed_from_generation is not None:
            parts.append(f"resumed-from={self.resumed_from_generation}")
        if self.n_ranks is not None:
            parts.append(f"ranks={self.n_ranks}")
        if self.makespan_seconds is not None:
            parts.append(f"virtual-makespan={self.makespan_seconds:.3f}s")
        return " ".join(parts)
