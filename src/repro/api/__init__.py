"""Unified simulation front-end with a pluggable backend registry.

The one entry point for running the paper's evolutionary dynamics::

    from repro import Simulation, run_sweep

    result = Simulation(config, backend="event").run()
    ensemble = run_sweep([config] * 8, workers=4, base_seed=7)

Built-in backends (``python -m repro backends`` lists them):

========================  ====================================================
``baseline``              paper Section IV.A pre-SSet algorithm (slow, naive)
``serial``                faithful per-generation reference loop
``event`` (default)       vectorised fast-forward, identical trajectory
``ensemble``              lane-batched replicates over one shared engine
``multiprocess``          event loop + process-pool fitness fan-out
``des``                   simulated Blue Gene machine (science + timing)
========================  ====================================================

New backends register through :func:`register_backend` and immediately work
everywhere a name is accepted — ``Simulation``, :func:`run_sweep`, and the
CLI.
"""

from .backends import (
    Backend,
    BaselineBackend,
    DESBackend,
    EnsembleBackend,
    EventBackend,
    MultiprocessBackend,
    SerialBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .report import BackendReport
from .simulation import Simulation
from .sweep import derive_sweep_seeds, run_sweep

__all__ = [
    "Backend",
    "BackendReport",
    "Simulation",
    "available_backends",
    "derive_sweep_seeds",
    "get_backend",
    "register_backend",
    "run_sweep",
    "BaselineBackend",
    "SerialBackend",
    "EventBackend",
    "EnsembleBackend",
    "MultiprocessBackend",
    "DESBackend",
]
