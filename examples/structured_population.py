#!/usr/bin/env python3
"""Structured populations: the same dynamics on different interaction graphs.

Evolves one seeded configuration on the paper's well-mixed population and
on three interaction graphs (ring lattice, 2-D torus grid, random regular
graph), then compares the spatial order parameters: dominant-strategy
share, mean per-neighborhood cooperation, and the largest dominant-strategy
cluster.  Sparse graphs localise pairwise-comparison learning — strategies
spread through neighborhoods instead of sweeping the whole population.

Also demonstrates checkpoint/resume carrying the structure spec: a resumed
run refuses to continue on a different graph than it was saved under.

Run:  python examples/structured_population.py
"""

import tempfile
from pathlib import Path

from repro import EvolutionConfig, Simulation
from repro.analysis import (
    largest_cluster_fraction,
    neighborhood_cooperation,
    strategy_richness,
)

STRUCTURES = ("well-mixed", "ring:k=4", "grid:rows=6,cols=6", "regular:d=4,seed=1")


def main() -> None:
    print(f"{'structure':<20} {'dominant':>9} {'nbhd coop':>10} "
          f"{'max cluster':>12} {'richness':>9}")
    for structure in STRUCTURES:
        config = EvolutionConfig(
            memory_steps=1,
            n_ssets=36,
            generations=30_000,
            structure=structure,
            seed=11,
        )
        result = Simulation(config).run()
        _, share = result.dominant()
        coop = neighborhood_cooperation(result.population, structure)
        cluster = largest_cluster_fraction(result.population, structure)
        print(f"{structure:<20} {share:>8.1%} {float(coop.mean()):>9.1%} "
              f"{cluster:>11.1%} {strategy_richness(result.population):>9}")

    # Checkpoints carry the structure spec: resuming under a different graph
    # is an error, not a silent change of science.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ring.npz"
        config = EvolutionConfig(
            n_ssets=36, generations=10_000, structure="ring:k=4", seed=11
        )
        Simulation(config, checkpoint_path=path).run()
        resumed = Simulation(
            config.with_updates(seed=12), checkpoint_path=path, resume=True
        ).run()
        print(f"\nresumed ring run: {resumed.summary()}")


if __name__ == "__main__":
    main()
