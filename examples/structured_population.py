#!/usr/bin/env python3
"""Structured populations: the same dynamics on different interaction graphs.

Evolves one seeded configuration on the paper's well-mixed population and
on five interaction graphs (ring lattice, 2-D torus grid, random regular,
Watts–Strogatz small world, Barabási–Albert scale free), then compares the
spatial order parameters: dominant-strategy share, mean per-neighborhood
cooperation, and the largest dominant-strategy cluster.  Sparse graphs
localise pairwise-comparison learning — strategies spread through
neighborhoods instead of sweeping the whole population.

Then the headline of the graph-native ensemble work: a whole replicate
sweep of a *small-world* scenario runs lane-batched through
``run_sweep(backend="ensemble")`` (the library face of
``repro sweep --backend ensemble --structure smallworld:...``), with every
lane bit-identical to its same-seed serial ``event`` run — the graph's CSR
adjacency drives one batched fitness gather per generation across all
replicates.

Also demonstrates checkpoint/resume carrying the structure spec: a resumed
run refuses to continue on a different graph than it was saved under.

Run:  python examples/structured_population.py
"""

import tempfile
import time
from pathlib import Path

from repro import EvolutionConfig, Simulation, run_sweep
from repro.analysis import (
    largest_cluster_fraction,
    neighborhood_cooperation,
    strategy_richness,
)

STRUCTURES = (
    "well-mixed",
    "ring:k=4",
    "grid:rows=6,cols=6",
    "regular:d=4,seed=1",
    "smallworld:k=4,p=0.1,seed=1",
    "scalefree:m=2,seed=1",
)

SMALLWORLD = "smallworld:k=4,p=0.1,seed=1"


def main() -> None:
    print(f"{'structure':<28} {'dominant':>9} {'nbhd coop':>10} "
          f"{'max cluster':>12} {'richness':>9}")
    for structure in STRUCTURES:
        config = EvolutionConfig(
            memory_steps=1,
            n_ssets=36,
            generations=30_000,
            structure=structure,
            seed=11,
        )
        result = Simulation(config).run()
        _, share = result.dominant()
        coop = neighborhood_cooperation(result.population, structure)
        cluster = largest_cluster_fraction(result.population, structure)
        print(f"{structure:<28} {share:>8.1%} {float(coop.mean()):>9.1%} "
              f"{cluster:>11.1%} {strategy_richness(result.population):>9}")

    # A small-world replicate ensemble on the lane-batched fast path: the
    # CLI equivalent is
    #   repro sweep --backend ensemble --structure smallworld:k=4,p=0.1,seed=1 \
    #       --memory 2 --runs 32 --ssets 36 --base-seed 7
    configs = [
        EvolutionConfig(
            memory_steps=2,
            n_ssets=36,
            generations=20_000,
            structure=SMALLWORLD,
            record_events=False,
        )
        for _ in range(32)
    ]
    started = time.perf_counter()
    results = run_sweep(configs, backend="ensemble", base_seed=7)
    elapsed = time.perf_counter() - started
    shares = sorted(result.dominant()[1] for result in results)
    report = results[0].backend_report
    print(f"\n32-lane small-world ensemble (memory 2): {elapsed:.2f}s, "
          f"dominant share {shares[0]:.0%}..{shares[-1]:.0%} "
          f"(median {shares[len(shares) // 2]:.0%})")
    print(f"  backend report: {report.summary()}")

    # Checkpoints carry the structure spec: resuming under a different graph
    # is an error, not a silent change of science.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smallworld.npz"
        config = EvolutionConfig(
            n_ssets=36, generations=10_000, structure=SMALLWORLD, seed=11
        )
        Simulation(config, checkpoint_path=path).run()
        resumed = Simulation(
            config.with_updates(seed=12), checkpoint_path=path, resume=True
        ).run()
        print(f"\nresumed small-world run: {resumed.summary()}")


if __name__ == "__main__":
    main()
