#!/usr/bin/env python3
"""Run the paper's parallel algorithm on the simulated Blue Gene/Q.

Demonstrates the full parallel stack: the evolutionary run is executed by
Nature/worker rank programs through the discrete-event MPI simulator on a
Blue Gene/Q machine model, and the science is verified to match the serial
reference bit-for-bit.  Then the calibrated analytic model extrapolates the
same configuration to paper-scale processor counts.

Run:  python examples/parallel_bluegene.py
"""

import numpy as np

from repro import Simulation
from repro.core import EvolutionConfig
from repro.framework import ParallelConfig
from repro.machine import BLUEGENE_Q
from repro.perfmodel import AnalyticModel, strong_scaling


def main() -> None:
    evolution = EvolutionConfig(
        memory_steps=2, n_ssets=24, generations=800, rounds=100, seed=7
    )
    parallel = ParallelConfig(machine=BLUEGENE_Q, n_ranks=9)  # 8 workers + Nature

    print("running the serial reference ...")
    serial = Simulation(evolution, backend="serial").run()
    print("running the same config through the DES on simulated BG/Q ...")
    result = Simulation(evolution, backend="des", parallel=parallel).run()
    report = result.backend_report

    same_events = serial.events == result.events
    same_final = np.array_equal(
        serial.population.strategy_matrix(),
        result.population.strategy_matrix(),
    )
    print(f"  parallel trajectory == serial trajectory : {same_events}")
    print(f"  final populations identical              : {same_final}")
    print(f"  virtual wallclock on 8 BG/Q workers      : "
          f"{report.makespan_seconds:.3f}s")
    print(f"  compute / communication seconds          : "
          f"{report.compute_seconds:.3f} / {report.comm_seconds:.3f}")

    print("\nextrapolating with the calibrated analytic model ...")
    big = evolution.with_updates(n_ssets=32_768)
    curve = strong_scaling(
        big,
        parallel.with_updates(executable=False),
        [p + 1 for p in (1024, 4096, 16384)],
    )
    for point in curve.points:
        print(
            f"  {point.n_workers:>6} workers: T={point.time:8.2f}s  "
            f"speedup={point.speedup:10.0f}  efficiency={point.efficiency:6.1%}"
        )
    model = AnalyticModel(big, parallel.with_updates(n_ranks=16385, executable=False))
    gen = model.generation_time()
    print(
        f"  per-generation critical path at 16384 workers: "
        f"compute={gen.compute * 1e3:.2f}ms, sync={gen.exposed_sync * 1e3:.2f}ms, "
        f"network={gen.network * 1e6:.1f}us"
    )


if __name__ == "__main__":
    main()
