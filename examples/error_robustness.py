#!/usr/bin/env python3
"""Why memory matters: error robustness of WSLS vs TFT (paper Section III.F).

The paper motivates longer memories with robustness to execution errors:
"An error ... would be fatal for the TFT strategy, as any accidental play
of defection would shift the pair into a continuously repeated play of
defection" while "Win-Stay Lose-Shift (WSLS) has been shown to outperform
TFT in the presence of errors".

This example quantifies that with the exact Markov engine: long-run
cooperation rates of self-play pairs across error rates, plus a noisy
round-robin tournament of the classic strategies.

Run:  python examples/error_robustness.py
"""

from repro.analysis import format_table
from repro.core import (
    all_c,
    all_d,
    expected_payoffs,
    grim,
    gtft,
    stationary_cooperation_rate,
    tf2t,
    tft,
    wsls,
)


def main() -> None:
    # Long-run self-play cooperation under increasing error rates.
    noises = [0.0, 0.005, 0.01, 0.05, 0.1]
    pairs = {
        "TFT": tft(1),
        "WSLS": wsls(1),
        "GRIM": grim(1),
        "TF2T (memory-2)": tf2t(2),
        "GTFT (mixed)": gtft(1 / 3, 1),
    }
    rows = []
    for name, strategy in pairs.items():
        rows.append(
            [name]
            + [
                round(stationary_cooperation_rate(strategy, strategy, eps), 3)
                for eps in noises
            ]
        )
    print(
        format_table(
            ["self-play pair"] + [f"eps={e}" for e in noises],
            rows,
            title="Long-run cooperation rate vs execution error rate",
        )
    )
    print(
        "\nTFT collapses toward 50% under any error rate; WSLS and TF2T "
        "(a memory-two strategy) repair errors and keep cooperating — the "
        "paper's motivation for modelling longer memories.\n"
    )

    # Noisy tournament: expected total payoffs over 200 rounds at eps=0.01.
    field = {
        "ALLC": all_c(1),
        "ALLD": all_d(1),
        "TFT": tft(1),
        "WSLS": wsls(1),
        "GRIM": grim(1),
        "GTFT": gtft(1 / 3, 1),
    }
    eps = 0.01
    names = list(field)
    rows = []
    for name_a in names:
        total = 0.0
        for name_b in names:
            pay, _, _ = expected_payoffs(field[name_a], field[name_b], 200, noise=eps)
            total += pay
        rows.append([name_a, round(total, 1)])
    rows.sort(key=lambda r: -r[1])
    print(
        format_table(
            ["strategy", "total expected payoff"],
            rows,
            title=f"Round-robin vs the classic field (200 rounds, eps={eps})",
        )
    )


if __name__ == "__main__":
    main()
