#!/usr/bin/env python3
"""Why memory matters: error robustness, from Markov theory to evolution.

The paper motivates longer memories with robustness to execution errors
(Section III.F): "An error ... would be fatal for the TFT strategy, as
any accidental play of defection would shift the pair into a continuously
repeated play of defection" while "Win-Stay Lose-Shift (WSLS) has been
shown to outperform TFT in the presence of errors".

Part one quantifies that claim with the exact Markov engine: long-run
cooperation rates of self-play pairs across error rates.  Part two lets
evolution confirm it — a noisy replicate ensemble on the batched
sampled-fitness fast path (``sampled_batched=True`` over the ensemble
backend, every event generation's sampled games fused into one vectorised
kernel call across lanes), reporting which strategies win at each error
rate and whether the winners still cooperate with themselves.

Run:  python examples/error_robustness.py
"""

import time

from repro import EvolutionConfig, run_sweep
from repro.analysis import classify, format_table, nearest_classic
from repro.core import (
    grim,
    gtft,
    stationary_cooperation_rate,
    tf2t,
    tft,
    wsls,
)

NOISES = (0.0, 0.01, 0.05)
MEMORY_DEPTHS = (1, 2)
RUNS_PER_CELL = 8
MASTER_SEED = 20130521  # the paper's conference date


def label(strategy) -> str:
    if not strategy.is_pure:
        return "<mixed>"
    name = classify(strategy)
    if name is None:
        near, dist = nearest_classic(strategy)
        name = f"~{near}+{dist}"
    return f"{strategy.bits()} ({name})"


def markov_motivation() -> None:
    """Long-run self-play cooperation under increasing error rates."""
    noises = [0.0, 0.005, 0.01, 0.05, 0.1]
    pairs = {
        "TFT": tft(1),
        "WSLS": wsls(1),
        "GRIM": grim(1),
        "TF2T (memory-2)": tf2t(2),
        "GTFT (mixed)": gtft(1 / 3, 1),
    }
    rows = []
    for name, strategy in pairs.items():
        rows.append(
            [name]
            + [
                round(stationary_cooperation_rate(strategy, strategy, eps), 3)
                for eps in noises
            ]
        )
    print(
        format_table(
            ["self-play pair"] + [f"eps={e}" for e in noises],
            rows,
            title="Long-run cooperation rate vs execution error rate",
        )
    )
    print(
        "\nTFT collapses toward 50% under any error rate; WSLS and TF2T "
        "(a memory-two strategy) repair errors and keep cooperating — the "
        "paper's motivation for modelling longer memories.\n"
    )


def evolved_robustness() -> None:
    """Evolve noisy ensembles on the batched sampled-fitness path."""
    rows = []
    for memory in MEMORY_DEPTHS:
        for noise in NOISES:
            configs = [
                EvolutionConfig(
                    memory_steps=memory,
                    n_ssets=16,
                    generations=10_000,
                    noise=noise,
                    # Only the noisy cells are in the sampled regime; the
                    # noise-free baseline keeps the deterministic cache.
                    sampled_batched=noise > 0.0,
                    record_events=False,
                )
                for _ in range(RUNS_PER_CELL)
            ]
            started = time.perf_counter()
            results = run_sweep(
                configs, backend="ensemble", base_seed=MASTER_SEED
            )
            elapsed = time.perf_counter() - started
            # The modal winner across replicates, plus how cooperative the
            # winners stay with themselves at this error rate.
            winners = [result.dominant()[0] for result in results]
            modal = max(set(winners), key=winners.count)
            coop = sum(
                stationary_cooperation_rate(w, w, noise) for w in winners
            ) / len(winners)
            rows.append(
                [
                    memory,
                    noise,
                    label(modal),
                    f"{winners.count(modal)}/{len(winners)}",
                    f"{coop:.2f}",
                    f"{len(configs) * configs[0].generations / elapsed:,.0f}",
                ]
            )
    print(
        format_table(
            ["memory", "noise", "modal winner", "wins", "coop", "gen/s"],
            rows,
            title=(
                f"Evolved winners vs error rate ({RUNS_PER_CELL} "
                f"replicates/cell, batched sampled fitness)"
            ),
        )
    )
    print(
        "\nAt memory one, noise hands the population to defectors; with "
        "memory two, error-correcting (WSLS-like) strategies keep "
        "cooperation alive — evolution rediscovers the Markov table above."
    )


def main() -> None:
    markov_motivation()
    evolved_robustness()


if __name__ == "__main__":
    main()
