#!/usr/bin/env python3
"""Regenerate the paper's scaling results (Figures 4, 6a, 6b; Table VI).

Prints the strong-scaling efficiency table across population sizes, the
SSets-per-processor knee, and the large-scale weak/strong scaling series —
all from the calibrated analytic model (validated against the discrete-
event simulator in the test suite).

Run:  python examples/scaling_study.py
"""

from repro.experiments import Scale, get


def main() -> None:
    for experiment_id in ("fig4", "table6", "fig6a", "fig6b"):
        result = get(experiment_id).run(Scale.SMOKE)
        print(f"== {experiment_id}: {result.title} ==")
        print(result.rendered)
        if result.paper_expectation:
            print(f"[paper: {result.paper_expectation}]")
        print()


if __name__ == "__main__":
    main()
