#!/usr/bin/env python3
"""Sweep service: submit ensembles to a long-lived server and reuse results.

Starts an in-process sweep server (the same thing ``repro serve`` runs),
then walks through the service workflow:

1. submit a replicate ensemble through the HTTP front door;
2. poll its live progress while the lanes advance;
3. resubmit the *identical* science and get the cached result back in
   milliseconds — bit-identical payload, no re-execution;
4. submit an ``interactive``-priority job and watch it jump the batch
   queue.

Everything below also works against a separate server process — start one
with ``repro serve`` and point ``SweepClient`` at its URL.

Run:  python examples/sweep_service.py
"""

import time

from repro import EvolutionConfig
from repro.service import (
    JobQueue,
    JobSpec,
    SweepClient,
    SweepServer,
    WarmEnginePool,
)

REPLICATES = 8
MASTER_SEED = 20130521  # the paper's conference date


def spec_for(seed0: int, priority: str = "batch", label: str = "") -> JobSpec:
    return JobSpec(
        configs=tuple(
            EvolutionConfig(
                memory_steps=2, n_ssets=16, generations=20_000, rounds=200,
                seed=seed0 + i, record_events=False,
            )
            for i in range(REPLICATES)
        ),
        priority=priority,
        label=label,
    )


def main() -> None:
    queue = JobQueue(workers=2, pool=WarmEnginePool())
    with SweepServer(port=0, queue=queue) as server:
        client = SweepClient(server.url)
        print(f"server up at {server.url}\n")

        # 1. Submit a batch ensemble.
        job = client.submit(spec_for(MASTER_SEED, label="demo-ensemble"))
        print(f"submitted {job['job_id']} "
              f"({REPLICATES} replicates, state={job['state']})")

        # 2. Poll progress while it runs.
        while True:
            status = client.job(job["job_id"])
            progress = status["progress"]
            print(f"  {status['state']:<8} "
                  f"runs {progress['runs_done']}/{progress['runs_total']}  "
                  f"ticks {progress['ticks_seen']}")
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.2)

        # 3. Resubmit the identical science: a cache hit, no re-execution.
        started = time.perf_counter()
        duplicate = client.submit(spec_for(MASTER_SEED))
        elapsed_ms = (time.perf_counter() - started) * 1e3
        print(f"\nduplicate submission: state={duplicate['state']} "
              f"cache_hit={duplicate['cache_hit']} in {elapsed_ms:.1f} ms")
        original = client.result(job["job_id"], population=False)
        cached = client.result(duplicate["job_id"], population=False)
        print(f"payloads bit-identical: "
              f"{original['results'] == cached['results']}")

        # 4. Interactive jobs jump the batch queue.
        batch = client.submit(spec_for(MASTER_SEED + 1000, "batch"))
        urgent = client.submit(
            spec_for(MASTER_SEED + 2000, "interactive", label="urgent")
        )
        client.wait(urgent["job_id"], timeout=300)
        client.wait(batch["job_id"], timeout=300)
        stats = client.stats()
        print(f"\nqueue: {stats['queue']['submitted_total']} submitted, "
              f"{stats['queue']['cache_hit_total']} cache hits; "
              f"store: {stats['store']['entries']} entries; "
              f"warm pool: {stats['pool']}")

        for i, run in enumerate(original["results"][:3]):
            dominant = run["dominant"]
            print(f"[run={i}] dominant {dominant['bits']} "
                  f"at {dominant['share']:.1%}")
    queue.close()


if __name__ == "__main__":
    main()
