#!/usr/bin/env python3
"""Sweep service: submit ensembles to a long-lived server and reuse results.

Starts an in-process sweep server (the same thing ``repro serve`` runs),
then walks through the service workflow:

1. submit a replicate ensemble through the HTTP front door;
2. poll its live progress while the lanes advance;
3. resubmit the *identical* science and get the cached result back in
   milliseconds — bit-identical payload, no re-execution;
4. submit an ``interactive``-priority job and watch it jump the batch
   queue;
5. cancel a runaway job — it stops cooperatively at tick cadence;
6. the fault-tolerance finale: ``kill -9`` a real ``repro serve``
   process mid-queue, restart it on the same ``--journal``, and watch
   every admitted job replay to completion;
7. the durability finale: ``kill -9`` a server mid-*run* and watch the
   restart resume the job from its newest mid-run snapshot
   (``--checkpoint-dir``) instead of recomputing from generation zero —
   with a bit-identical result.

Everything below also works against a separate server process — start one
with ``repro serve`` and point ``SweepClient`` at its URL.

Run:  python examples/sweep_service.py
"""

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro import EvolutionConfig
from repro.service import (
    JobQueue,
    JobSpec,
    SweepClient,
    SweepServer,
    WarmEnginePool,
)

REPLICATES = 8
MASTER_SEED = 20130521  # the paper's conference date


def spec_for(seed0: int, priority: str = "batch", label: str = "") -> JobSpec:
    return JobSpec(
        configs=tuple(
            EvolutionConfig(
                memory_steps=2, n_ssets=16, generations=20_000, rounds=200,
                seed=seed0 + i, record_events=False,
            )
            for i in range(REPLICATES)
        ),
        priority=priority,
        label=label,
    )


def main() -> None:
    queue = JobQueue(workers=2, pool=WarmEnginePool())
    with SweepServer(port=0, queue=queue) as server:
        client = SweepClient(server.url)
        print(f"server up at {server.url}\n")

        # 1. Submit a batch ensemble.
        job = client.submit(spec_for(MASTER_SEED, label="demo-ensemble"))
        print(f"submitted {job['job_id']} "
              f"({REPLICATES} replicates, state={job['state']})")

        # 2. Poll progress while it runs.
        while True:
            status = client.job(job["job_id"])
            progress = status["progress"]
            print(f"  {status['state']:<8} "
                  f"runs {progress['runs_done']}/{progress['runs_total']}  "
                  f"ticks {progress['ticks_seen']}")
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.2)

        # 3. Resubmit the identical science: a cache hit, no re-execution.
        started = time.perf_counter()
        duplicate = client.submit(spec_for(MASTER_SEED))
        elapsed_ms = (time.perf_counter() - started) * 1e3
        print(f"\nduplicate submission: state={duplicate['state']} "
              f"cache_hit={duplicate['cache_hit']} in {elapsed_ms:.1f} ms")
        original = client.result(job["job_id"], population=False)
        cached = client.result(duplicate["job_id"], population=False)
        print(f"payloads bit-identical: "
              f"{original['results'] == cached['results']}")

        # 4. Interactive jobs jump the batch queue.
        batch = client.submit(spec_for(MASTER_SEED + 1000, "batch"))
        urgent = client.submit(
            spec_for(MASTER_SEED + 2000, "interactive", label="urgent")
        )
        client.wait(urgent["job_id"], timeout=300)
        client.wait(batch["job_id"], timeout=300)
        stats = client.stats()
        print(f"\nqueue: {stats['queue']['submitted_total']} submitted, "
              f"{stats['queue']['cache_hit_total']} cache hits; "
              f"store: {stats['store']['entries']} entries; "
              f"warm pool: {stats['pool']}")

        for i, run in enumerate(original["results"][:3]):
            dominant = run["dominant"]
            print(f"[run={i}] dominant {dominant['bits']} "
                  f"at {dominant['share']:.1%}")

        # 5. Cancel a runaway job: DELETE /jobs/<id> interrupts the
        # running execution cooperatively at progress-tick cadence.
        runaway = client.submit(JobSpec(
            configs=(EvolutionConfig(
                memory_steps=2, n_ssets=16, generations=100_000_000,
                seed=MASTER_SEED + 9000, record_events=False,
            ),),
            label="runaway",
        ))
        time.sleep(0.3)  # let it reach the worker
        client.cancel(runaway["job_id"])
        final = client.wait(runaway["job_id"], timeout=60)
        print(f"\nrunaway job {final['job_id']}: state={final['state']} "
              f"({final['error']})")
    queue.close()


def kill_and_recover() -> None:
    """Durable journal: SIGKILL a live server mid-queue, lose nothing."""
    state = Path(tempfile.mkdtemp(prefix="sweep-service-demo-"))
    command = [
        sys.executable, "-m", "repro", "serve", "--port", "0",
        "--workers", "1", "--journal", str(state / "jobs.wal"),
        "--artifact-dir", str(state / "results"),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(repro.__file__).resolve().parents[1])
        + os.pathsep + env.get("PYTHONPATH", "")
    )

    def start():
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        banner = process.stdout.readline()
        url = re.search(r"listening on (http://[0-9.:]+)", banner).group(1)
        return process, SweepClient(url)

    process, client = start()
    admitted = [
        client.submit(spec_for(MASTER_SEED + 3000 + i * 100))["job_id"]
        for i in range(2)
    ]
    # The crash: no drain, no shutdown hooks.  Both jobs were journaled
    # before their submissions were acknowledged, so the WAL has them.
    process.kill()
    process.wait()
    print(f"\nkilled -9 with {len(admitted)} jobs admitted: {admitted}")

    process, client = start()
    try:
        print(process.stdout.readline().strip())  # "journal replayed ..."
        while any(
            status["state"] not in ("done", "failed", "cancelled")
            for status in client.jobs()
        ):
            time.sleep(0.2)
        for status in client.jobs():
            print(f"  {status['job_id']} "
                  f"(was {status['recovered_from']} before the crash) "
                  f"-> {status['state']}")
    finally:
        process.terminate()  # SIGTERM: graceful drain, clean exit
        process.wait(timeout=30)


def kill_and_resume_midrun() -> None:
    """Mid-run checkpointing: SIGKILL a server mid-*run*, resume, finish.

    The job's configs set ``checkpoint_every``, the server a
    ``--checkpoint-dir`` — together they snapshot the full run state
    (arrays, RNG stream positions, event log) at that cadence.  After the
    kill, the restart replays the journaled job and resumes it from the
    newest snapshot; the finished payload is bit-identical to an
    uninterrupted run.  ``--no-warm-pool`` because cross-job pair sharing
    is the one deterministic mode that refuses mid-run snapshots.
    """
    state = Path(tempfile.mkdtemp(prefix="sweep-service-demo-"))
    command = [
        sys.executable, "-m", "repro", "serve", "--port", "0",
        "--workers", "1", "--no-warm-pool",
        "--journal", str(state / "jobs.wal"),
        "--checkpoint-dir", str(state / "checkpoints"),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(repro.__file__).resolve().parents[1])
        + os.pathsep + env.get("PYTHONPATH", "")
    )

    def start():
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        banner = process.stdout.readline()
        url = re.search(r"listening on (http://[0-9.:]+)", banner).group(1)
        return process, SweepClient(url)

    # One long run, snapshotting every 20k generations.
    spec = JobSpec(
        configs=(EvolutionConfig(
            memory_steps=2, n_ssets=16, generations=200_000, rounds=200,
            seed=MASTER_SEED + 5000, record_events=False,
            checkpoint_every=20_000,
        ),),
        share_engine=False,
        label="long-checkpointed-run",
    )

    process, client = start()
    job_id = client.submit(spec)["job_id"]
    while client.stats()["queue"]["checkpoints"]["written_total"] < 2:
        time.sleep(0.05)
    process.kill()
    process.wait()
    print(f"\nkilled -9 mid-run with snapshots on disk for {job_id}")

    process, client = start()
    try:
        print(process.stdout.readline().strip())  # "journal replayed ..."
        while any(
            status["state"] not in ("done", "failed", "cancelled")
            for status in client.jobs()
        ):
            time.sleep(0.2)
        (status,) = client.jobs()
        checkpoints = client.stats()["queue"]["checkpoints"]
        generations = spec.configs[0].generations
        print(f"  {status['job_id']} "
              f"(was {status['recovered_from']}) -> {status['state']}; "
              f"resumed {checkpoints['resumed_total']} run(s); the "
              f"{status['progress']['ticks_seen']} progress ticks cover "
              f"only the resumed tail of the {generations}-generation "
              f"horizon")
    finally:
        process.terminate()
        process.wait(timeout=30)


if __name__ == "__main__":
    main()
    kill_and_recover()
    kill_and_resume_midrun()
