#!/usr/bin/env python3
"""Quickstart: evolve a memory-one population and inspect the outcome.

Runs the paper's population dynamics (pairwise-comparison learning at rate
0.1, mutation at rate 0.05, 200-round iterated Prisoner's Dilemma games
with payoffs [R,S,T,P] = [3,0,4,1]) for a small population, then prints
the strategy raster before and after, the dominant strategy, and the
population cooperation rate.

Run:  python examples/quickstart.py
"""

from repro import EvolutionConfig, Simulation
from repro.analysis import (
    classify,
    nearest_classic,
    population_cooperation_rate,
    render_raster,
)
from repro.core import MEMORY_ONE_GRAY_ORDER


def main() -> None:
    config = EvolutionConfig(
        memory_steps=1,
        n_ssets=128,
        generations=100_000,
        rounds=200,
        noise=0.01,           # trembling-hand execution errors
        expected_fitness=True,  # exact expected payoffs (fast + deterministic)
        seed=42,
    )
    print(f"Evolving {config.n_ssets} SSets for {config.generations:,} generations ...")
    result = Simulation(config, backend="event").run()

    print()
    print(
        render_raster(
            result.snapshots[0].strategy_matrix,
            column_order=MEMORY_ONE_GRAY_ORDER,
            max_rows=16,
            title="initial population",
        )
    )
    print()
    print(
        render_raster(
            result.population.strategy_matrix(),
            column_order=MEMORY_ONE_GRAY_ORDER,
            max_rows=16,
            title="final population",
        )
    )

    dominant, share = result.dominant()
    name = classify(dominant)
    if name is None:
        name, dist = nearest_classic(dominant)
        name = f"~{name} (hamming {dist})"
    print()
    print(f"dominant strategy : {dominant.bits()} ({name}) at {share:.1%}")
    print(f"PC events         : {result.n_pc_events} ({result.n_adoptions} adoptions)")
    print(f"mutations         : {result.n_mutations}")
    print(
        "cooperation rate  : "
        f"{population_cooperation_rate(result.population, rounds=200):.1%}"
    )
    print(f"wallclock         : {result.wallclock_seconds:.2f}s "
          f"(payoff cache: {result.cache_hits} hits / {result.cache_misses} misses)")
    print(f"execution         : {result.backend_report.summary()}")


if __name__ == "__main__":
    main()
