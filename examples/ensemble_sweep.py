#!/usr/bin/env python3
"""Ensemble sweep: which strategies win across seeds and memory depths?

Uses the unified front-end's batch API (:func:`repro.run_sweep`) to fan an
ensemble of independent evolutions over a process pool — every run's seed
is derived deterministically from one master seed, so the whole ensemble is
reproducible — then tallies the dominant strategy per memory depth.

Run:  python examples/ensemble_sweep.py
"""

from collections import Counter

from repro import EvolutionConfig, run_sweep
from repro.analysis import classify, nearest_classic

MEMORY_DEPTHS = (1, 2)
RUNS_PER_DEPTH = 8
MASTER_SEED = 20130521  # the paper's conference date


def label(strategy) -> str:
    name = classify(strategy)
    if name is None and strategy.is_pure:
        near, dist = nearest_classic(strategy)
        name = f"~{near}+{dist}"
    return f"{strategy.bits() if strategy.is_pure else '<mixed>'} ({name})"


def main() -> None:
    configs = [
        EvolutionConfig(
            memory_steps=memory, n_ssets=32, generations=30_000, rounds=200
        )
        for memory in MEMORY_DEPTHS
        for _ in range(RUNS_PER_DEPTH)
    ]
    print(f"running {len(configs)} evolutions over 4 worker processes ...")

    def progress(index: int, result) -> None:
        dominant, share = result.dominant()
        print(f"  run {index:>2}: memory-{result.config.memory_steps} "
              f"seed={result.config.seed} -> {label(dominant)} at {share:.0%}")

    results = run_sweep(configs, workers=4, base_seed=MASTER_SEED,
                        on_result=progress)

    for memory in MEMORY_DEPTHS:
        winners = Counter(
            label(r.dominant()[0])
            for r in results
            if r.config.memory_steps == memory
        )
        print(f"\nmemory-{memory} winners over {RUNS_PER_DEPTH} seeds:")
        for name, count in winners.most_common():
            print(f"  {count:>2}x {name}")


if __name__ == "__main__":
    main()
