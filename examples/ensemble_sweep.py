#!/usr/bin/env python3
"""Ensemble sweep: which strategies win across seeds and memory depths?

Runs a replicate ensemble through the lane-batched ``ensemble`` backend —
the whole sweep advances as one array program over a shared strategy pool
and payoff matrix, while every replicate's trajectory stays bit-identical
to running it alone (``backend="event"``).  The script times both paths on
a small ensemble so you can see the speedup on your machine, then tallies
the dominant strategy per memory depth.

Every run's seed derives deterministically from one master seed, so the
whole ensemble is reproducible.

Run:  python examples/ensemble_sweep.py
"""

import time
from collections import Counter

from repro import EvolutionConfig, run_sweep
from repro.analysis import classify, nearest_classic

MEMORY_DEPTHS = (1, 2)
RUNS_PER_DEPTH = 16
MASTER_SEED = 20130521  # the paper's conference date


def label(strategy) -> str:
    name = classify(strategy)
    if name is None and strategy.is_pure:
        near, dist = nearest_classic(strategy)
        name = f"~{near}+{dist}"
    return f"{strategy.bits() if strategy.is_pure else '<mixed>'} ({name})"


def main() -> None:
    configs = [
        EvolutionConfig(
            memory_steps=memory, n_ssets=16, generations=30_000, rounds=200,
            record_events=False,
        )
        for memory in MEMORY_DEPTHS
        for _ in range(RUNS_PER_DEPTH)
    ]
    print(f"running {len(configs)} evolutions lane-batched ...")
    started = time.perf_counter()
    results = run_sweep(configs, backend="ensemble", base_seed=MASTER_SEED)
    ensemble_seconds = time.perf_counter() - started
    report = results[0].backend_report
    print(f"  ensemble backend: {ensemble_seconds:.2f}s "
          f"({report.lanes} lanes in the first group)")

    started = time.perf_counter()
    reference = run_sweep(configs, backend="event", base_seed=MASTER_SEED)
    event_seconds = time.perf_counter() - started
    print(f"  event backend:    {event_seconds:.2f}s "
          f"(speedup x{event_seconds / ensemble_seconds:.1f})")

    for mine, theirs in zip(results, reference):
        dom_mine, share_mine = mine.dominant()
        dom_theirs, share_theirs = theirs.dominant()
        assert (dom_mine.key(), share_mine) == (
            dom_theirs.key(), share_theirs,
        ), "lanes must match!"

    for memory in MEMORY_DEPTHS:
        winners = Counter(
            label(r.dominant()[0])
            for r in results
            if r.config.memory_steps == memory
        )
        print(f"\nmemory-{memory} winners over {RUNS_PER_DEPTH} seeds:")
        for name, count in winners.most_common():
            print(f"  {count:>2}x {name}")


if __name__ == "__main__":
    main()
