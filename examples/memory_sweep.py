#!/usr/bin/env python3
"""Memory-step sweep: cost and capacity of longer memories (paper Figs. 4–5).

Sweeps memory-one through memory-six and reports, per step:

* the strategy-space size (paper Table IV),
* the modelled Blue Gene/P runtime split for the paper's Fig. 5 workload,
* whether the step fits in a BG/P rank's memory with the paper's
  32,768-strategy working set (the "memory-six is the limit" claim),
* a real (host-machine) timing of the memory-n game kernel.

Run:  python examples/memory_sweep.py
"""

import time

from repro.analysis import format_table
from repro.core import EvolutionConfig, random_pure, strategy_space_size
from repro.core.vectorgame import payoff_matrix
from repro.framework import ParallelConfig
from repro.machine import BLUEGENE_P, estimate_footprint
from repro.perfmodel import AnalyticModel
from repro.rng import make_rng


def main() -> None:
    rng = make_rng(123)
    budget = BLUEGENE_P.memory_per_rank_bytes()
    rows = []
    for n in range(1, 7):
        # Modelled BG/P runtime for the paper's Fig. 5 workload.
        model = AnalyticModel(
            EvolutionConfig(
                memory_steps=n, n_ssets=2048, generations=20, rounds=200
            ),
            ParallelConfig(machine=BLUEGENE_P, n_ranks=2049, executable=False),
        )
        compute, comm = model.compute_comm_split()
        # Real host timing of the vectorised kernel: 16x16 strategies.
        strategies = [random_pure(rng, n) for _ in range(16)]
        t0 = time.perf_counter()
        payoff_matrix(strategies, rounds=200)
        host_ms = (time.perf_counter() - t0) * 1e3
        fits = (
            estimate_footprint(n, 32_768, ssets_per_rank=4096).total <= budget
        )
        rows.append(
            [
                n,
                f"2^{strategy_space_size(n).bit_length() - 1}",
                round(compute, 1),
                round(comm, 2),
                round(host_ms, 1),
                "yes" if fits else "NO",
            ]
        )
    print(
        format_table(
            [
                "memory",
                "strategies",
                "BG/P compute (s)",
                "BG/P comm (s)",
                "host kernel (ms)",
                "fits 512MB",
            ],
            rows,
            title="Memory-step sweep (Fig. 5 workload: 2048 SSets, 20 gens)",
        )
    )
    print(
        "\nMemory-seven would need 512 MB of strategy tables alone — the "
        "paper's claim that memory-six is the practical limit."
    )


if __name__ == "__main__":
    main()
